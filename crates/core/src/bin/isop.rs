//! `isop` — command-line interface to the stack-up optimizer.
//!
//! ```text
//! isop simulate --w 5 --s 6 --d 30 [--dk 3.6] [--df 0.008] [--engine fd]
//! isop optimize --task t1 --space s1 [--seed 42] [--trials 1] [--threads 4] [--with-ic]
//!               [--em-fault-rate 0.3] [--em-permanent-rate 0.05] [--em-retries 3]
//!               [--report] [--report-out results/run_report.json]
//! isop spaces
//! isop dataset --n 1000 --out dataset.json [--space training]
//! isop cache stats|verify|compact --cache-dir results/eval_store
//! isop cache export --cache-dir DIR --out em_cache.json
//! isop cache import --cache-dir DIR --file em_cache.json
//! isop serve --jobs jobs.json [--cores 8] [--wave-slots 4] [--cache-dir DIR]
//!            [--report-dir results/engine]
//! isop daemon --listen 127.0.0.1:7878 [--cache-dir DIR] [--cores 8] [--wave-slots 4]
//!             [--quota-em SECONDS] [--quota-window EPOCHS]
//! isop engine bench [--seed 3] [--cores 8] [--report-dir results/engine]
//! isop report --aggregate results/engine [--out results/engine/tenants.json]
//! ```
//!
//! Invoking `isop --flags...` without a subcommand runs `optimize` — so
//! `isop --report --threads 4` is the canonical instrumented smoke run.
//!
//! `--cache-dir` (off by default) points `optimize` at a persistent sharded
//! evaluation store: accurate EM results are served from records previous
//! runs wrote (`store.cross_job_hits` in the report) and fresh ones are
//! appended for the next run. `isop cache` administers such a store; the
//! legacy whole-file JSON spill survives as its import/export format.
//! `--report` attaches a telemetry handle to the pipeline and the verifying
//! simulator, prints the per-stage span/counter table, and writes the
//! machine-readable [`RunReport`] JSON for the CI bench gate.
//!
//! `--em-fault-rate` / `--em-permanent-rate` wrap the verifying simulator
//! in the seeded deterministic fault injector (faults keyed by design
//! identity, so outcomes are identical at any `--threads`); `--em-retries`
//! bounds the roll-out's transient-failure retry budget. When every
//! simulation fails, the run exits non-zero with the explicit
//! `all_simulations_failed` resolution — and `--report` still writes the
//! report, carrying that resolution, so the outage is never mistaken for
//! an ordinary infeasible trial.
//!
//! `serve` runs a whole batch of optimization jobs through the multi-job
//! engine: a JSON job file (array of `{id, tenant, task, space, seed,
//! weight, threads}` specs, every field optional) is admitted in
//! weighted-fair waves and executed concurrently under one shared core
//! budget; with `--cache-dir` the jobs warm-start each other through the
//! persistent store. `--report-dir` writes one tagged [`RunReport`] per
//! job plus the aggregated `engine_report.json`. `engine bench` runs a
//! built-in four-job demo batch (two tenants, each a fresh space and a
//! rerun) serially and concurrently and prints the throughput and
//! cross-job-elision numbers. `report --aggregate DIR` folds a directory
//! of per-job reports into one per-tenant table.
//!
//! `daemon` keeps the engine running as a service: it listens for
//! newline-delimited JSON requests (`submit` / `cancel` / `status` /
//! `report` / `shutdown`) on a TCP socket, admits submissions in streamed
//! epochs, enforces rolling per-tenant EM-seconds quotas, and journals
//! every job state transition into `--cache-dir` so a killed daemon
//! resumes on restart, replaying finished jobs bit-identically.
//!
//! The CLI is intentionally dependency-free (hand-rolled flag parsing); it
//! exists so the library is usable from shell workflows without writing
//! Rust.

use isop::prelude::*;
use isop_em::fdsolver::FdConfig;
use isop_em::simulator::{AnalyticalSolver, EmSimulator, FieldSolver, SimulationResult};
use isop_em::stackup::DiffStripline;
use isop_hpo::budget::Budget;
use isop_store::Store;
use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                map.insert(key.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                map.insert(key.to_string(), "true".to_string());
                i += 1;
            }
        } else {
            eprintln!("warning: ignoring stray argument '{}'", args[i]);
            i += 1;
        }
    }
    map
}

fn flag_f64(flags: &HashMap<String, String>, key: &str, default: f64) -> f64 {
    flags
        .get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

// Name lookups live in `isop::jobs` so the CLI and the job-file parser
// agree on the same labels.
use isop::jobs::{space_by_name, task_by_name};

fn cmd_simulate(flags: &HashMap<String, String>) -> Result<(), String> {
    let layer = DiffStripline::builder()
        .trace_width(flag_f64(flags, "w", 5.0))
        .trace_spacing(flag_f64(flags, "s", 6.0))
        .pair_distance(flag_f64(flags, "d", 30.0))
        .etch_factor(flag_f64(flags, "etch", 0.0))
        .trace_height(flag_f64(flags, "ht", 1.2))
        .core_height(flag_f64(flags, "hc", 6.0))
        .prepreg_height(flag_f64(flags, "hp", 6.0))
        .conductivity(flag_f64(flags, "sigma", 5.8e7))
        .roughness(flag_f64(flags, "rough", 0.0))
        .dk_trace(flag_f64(flags, "dk", 3.6))
        .dk_core(flag_f64(flags, "dk", 3.6))
        .dk_prepreg(flag_f64(flags, "dk", 3.6))
        .df_trace(flag_f64(flags, "df", 0.008))
        .df_core(flag_f64(flags, "df", 0.008))
        .df_prepreg(flag_f64(flags, "df", 0.008))
        .build()
        .map_err(|e| e.to_string())?;
    let result = match flags.get("engine").map(String::as_str) {
        Some("fd") => FieldSolver::new(FdConfig::default())
            .simulate(&layer)
            .map_err(|e| e.to_string())?,
        _ => AnalyticalSolver::new()
            .simulate(&layer)
            .map_err(|e| e.to_string())?,
    };
    println!("Z    = {:.2} ohm (differential)", result.z_diff);
    println!("L    = {:.3} dB/inch @ 16 GHz", result.insertion_loss);
    println!("NEXT = {:.3} mV", result.next);
    Ok(())
}

fn cmd_optimize(flags: &HashMap<String, String>) -> Result<(), String> {
    let task = task_by_name(flags.get("task").map(String::as_str).unwrap_or("t1"))
        .ok_or("unknown task (use t1..t4)")?;
    let space_name = flags.get("space").map(String::as_str).unwrap_or("s1");
    let space = space_by_name(space_name).ok_or("unknown space (s1, s2, s1p)")?;
    let seed = flag_f64(flags, "seed", 42.0) as u64;
    let trials = flag_f64(flags, "trials", 1.0) as usize;
    let threads = flag_f64(flags, "threads", 1.0) as usize;
    let ics = if flags.contains_key("with-ic") {
        isop::tasks::table_ix_input_constraints()
    } else {
        vec![]
    };

    let report = flags.contains_key("report");
    let telemetry = if report {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };

    // Fault-tolerance knobs: a non-zero fault rate wraps the verifying
    // simulator in the deterministic, design-keyed fault injector; the
    // retry budget bounds how often the roll-out re-runs a transient
    // failure before giving up on that candidate.
    let fault_rate = flag_f64(flags, "em-fault-rate", 0.0);
    let permanent_rate = flag_f64(flags, "em-permanent-rate", 0.0);
    let default_retries = RetryPolicy::default().max_attempts;
    let em_retries = flag_f64(flags, "em-retries", f64::from(default_retries)) as u32;

    // The roll-out verifier records EM attempts/successes/failures; the
    // surrogate's inner solver stays untraced on purpose — its queries are
    // surrogate predictions, already counted inside the pipeline.
    let solver = AnalyticalSolver::new().with_telemetry(telemetry.clone());
    let simulator: Box<dyn EmSimulator> = if fault_rate > 0.0 || permanent_rate > 0.0 {
        Box::new(
            FaultInjector::new(
                solver,
                FaultConfig {
                    transient_rate: fault_rate,
                    permanent_rate,
                    seed,
                },
            )
            .with_telemetry(telemetry.clone()),
        )
    } else {
        Box::new(solver)
    };
    // Persistent cross-run cache (default off, so plain runs behave
    // exactly as before): accurate EM results are hydrated from and
    // appended to the sharded store at --cache-dir.
    let store = match flags.get("cache-dir") {
        Some(dir) => Some(Arc::new(
            Store::open(std::path::Path::new(dir))
                .map_err(|e| format!("cache-dir {dir}: {e}"))?
                .with_telemetry(telemetry.clone()),
        )),
        None => None,
    };
    let eval_cache = match &store {
        Some(s) => isop::evalcache::EvalCache::with_store(Arc::clone(s)),
        None => isop::evalcache::EvalCache::disabled(),
    };

    let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
    let mut best: Option<(f64, DesignCandidate, bool)> = None;
    let mut samples_seen = 0u64;
    let mut invalid_seen = 0u64;
    let mut algorithm_seconds = 0.0f64;
    let mut any_success = false;
    let mut worst_resolution = RolloutResolution::Full;
    let severity = |r: RolloutResolution| match r {
        RolloutResolution::Full => 0,
        RolloutResolution::Degraded => 1,
        RolloutResolution::AllSimulationsFailed => 2,
    };
    for t in 0..trials.max(1) {
        let config = IsopConfig {
            parallelism: isop::exec::Parallelism::new(threads),
            retry: RetryPolicy {
                max_attempts: em_retries,
                ..RetryPolicy::default()
            },
            ..IsopConfig::default()
        };
        let optimizer = IsopOptimizer::new(&space, &surrogate, &*simulator, config)
            .with_telemetry(telemetry.clone())
            .with_eval_cache(eval_cache.clone());
        let outcome = optimizer.run(
            isop::tasks::objective_for(task, ics.clone()),
            Budget::unlimited(),
            seed + t as u64,
        );
        samples_seen += outcome.samples_seen;
        invalid_seen += outcome.invalid_seen;
        algorithm_seconds += outcome.algorithm_seconds;
        any_success |= outcome.success;
        if outcome.resolution != RolloutResolution::Full {
            eprintln!(
                "warning: trial {t} roll-out degraded ({}): \
                 {} transient, {} permanent failure(s), {} retried, {} topped up",
                outcome.resolution,
                outcome.em_failures_transient,
                outcome.em_failures_permanent,
                outcome.em_retries,
                outcome.em_topped_up
            );
        }
        if severity(outcome.resolution) > severity(worst_resolution) {
            worst_resolution = outcome.resolution;
        }
        if let Some(c) = outcome.best() {
            if best.as_ref().is_none_or(|(g, _, _)| c.g_exact < *g) {
                best = Some((c.g_exact, c.clone(), outcome.success));
            }
        }
    }
    if let Some(s) = &store {
        eval_cache.persist().map_err(|e| e.to_string())?;
        let stats = s.stats().map_err(|e| e.to_string())?;
        eprintln!(
            "eval-store: {} record(s) across {} shard(s), {} lifetime cross-job hit(s)",
            stats.eval_records, stats.shards, stats.cross_job_hits
        );
    }
    println!("task {task} on {space_name} (seed {seed}, {trials} trial(s))");
    if let Some((g, cand, success)) = &best {
        let sim = cand.simulated.ok_or("candidate unverified")?;
        for (name, v) in isop_em::PARAM_NAMES.iter().zip(&cand.values) {
            println!("  {name:>8} = {v}");
        }
        println!(
            "Z = {:.2} ohm, L = {:.3} dB/in, NEXT = {:.3} mV",
            sim.z_diff, sim.insertion_loss, sim.next
        );
        println!("g = {g:.4}, constraints satisfied: {success}");
    }

    if report {
        let mut rep = telemetry.run_report();
        rep.task = task.to_string();
        rep.space = space_name.to_string();
        rep.seed = seed;
        rep.threads = threads;
        rep.success = any_success;
        rep.samples_seen = samples_seen;
        rep.invalid_seen = invalid_seen;
        rep.algorithm_seconds = algorithm_seconds;
        rep.resolution = worst_resolution.as_str().to_string();
        print_run_report(&rep);
        let out = flags
            .get("report-out")
            .cloned()
            .unwrap_or_else(|| "results/run_report.json".to_string());
        if let Some(dir) = std::path::Path::new(&out).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
            }
        }
        let json = rep.to_json().map_err(|e| format!("{e:?}"))?;
        std::fs::write(&out, json).map_err(|e| e.to_string())?;
        println!("\nwrote run report to {out}");
    }
    // The report (when requested) is written *before* this bail-out so a
    // total simulator outage still leaves a machine-readable record of the
    // degraded resolution rather than vanishing behind the exit code.
    if best.is_none() {
        return Err(match worst_resolution {
            RolloutResolution::AllSimulationsFailed => format!(
                "every accurate EM simulation failed (resolution: {worst_resolution}); \
                 raise --em-retries or lower --em-fault-rate"
            ),
            _ => "no design survived roll-out".to_string(),
        });
    }
    Ok(())
}

/// Renders the telemetry snapshot as two human-readable tables (spans, then
/// counters) on stdout.
fn print_run_report(rep: &RunReport) {
    println!(
        "\nrun report (schema v{}): algorithm {:.2}s, charged EM {:.1}s",
        rep.schema_version, rep.algorithm_seconds, rep.em_seconds_charged
    );
    let mut spans = isop::report::Table::new(vec!["span", "count", "total s", "min s", "max s"]);
    for s in &rep.spans {
        spans.push_row(vec![
            s.name.clone(),
            s.count.to_string(),
            format!("{:.4}", s.total_seconds),
            format!("{:.6}", s.min_seconds),
            format!("{:.6}", s.max_seconds),
        ]);
    }
    println!("{}", spans.to_markdown());
    let mut counters = isop::report::Table::new(vec!["counter", "value"]);
    for c in &rep.counters {
        counters.push_row(vec![c.name.clone(), c.value.to_string()]);
    }
    println!("{}", counters.to_markdown());
}

fn cmd_spaces() {
    for (name, space) in [
        ("s1", isop::spaces::s1()),
        ("s2", isop::spaces::s2()),
        ("s1p", isop::spaces::s1_prime()),
        ("training", isop::spaces::training_space()),
    ] {
        println!(
            "{name:>9}: {} params, {} bits, {:.3e} valid designs",
            space.n_params(),
            space.total_bits(),
            space.n_valid()
        );
    }
}

fn cmd_dataset(flags: &HashMap<String, String>) -> Result<(), String> {
    let n = flag_f64(flags, "n", 1000.0) as usize;
    let out = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| "dataset.json".into());
    let space_name = flags.get("space").map(String::as_str).unwrap_or("training");
    let space = space_by_name(space_name).ok_or("unknown space")?;
    let data = isop::data::generate_dataset(
        &space,
        n,
        &AnalyticalSolver::new(),
        flag_f64(flags, "seed", 0.0) as u64,
    )
    .map_err(|e| e.to_string())?;
    let json = serde_json::to_string(&data).map_err(|e| e.to_string())?;
    std::fs::write(&out, json).map_err(|e| e.to_string())?;
    println!("wrote {n} samples from {space_name} to {out}");
    Ok(())
}

/// Runs a JSON job file through the multi-job engine.
fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), String> {
    let jobs_file = flags.get("jobs").ok_or("serve requires --jobs FILE")?;
    let text = std::fs::read_to_string(jobs_file).map_err(|e| format!("{jobs_file}: {e}"))?;
    let queue = JobQueue::from_specs(isop::jobs::parse_jobs(&text)?);
    let telemetry = Telemetry::enabled();
    // The shared store carries the *engine's* telemetry handle: store
    // traffic interleaves nondeterministically across concurrent jobs, so
    // it must never land in a per-job report.
    let store = match flags.get("cache-dir") {
        Some(dir) => Some(Arc::new(
            Store::open(std::path::Path::new(dir))
                .map_err(|e| format!("cache-dir {dir}: {e}"))?
                .with_telemetry(telemetry.clone()),
        )),
        None => None,
    };
    let mut engine = Engine::new(EngineConfig {
        cores: flag_f64(flags, "cores", 0.0) as usize,
        wave_slots: flag_f64(flags, "wave-slots", 4.0) as usize,
        pipeline: IsopConfig::default(),
    })
    .with_telemetry(telemetry);
    if let Some(s) = &store {
        engine = engine.with_store(Arc::clone(s));
    }
    let report = engine.run(&queue)?;
    print_engine_summary(&report);
    if let Some(dir) = flags.get("report-dir") {
        write_engine_reports(dir, &report)?;
    }
    Ok(())
}

/// Runs the live optimization daemon on a TCP listen address.
fn cmd_daemon(flags: &HashMap<String, String>) -> Result<(), String> {
    let addr = flags
        .get("listen")
        .ok_or("daemon requires --listen ADDR (e.g. 127.0.0.1:7878)")?;
    let telemetry = Telemetry::enabled();
    let store = match flags.get("cache-dir") {
        Some(dir) => Some(Arc::new(
            Store::open(std::path::Path::new(dir))
                .map_err(|e| format!("cache-dir {dir}: {e}"))?
                .with_telemetry(telemetry.clone()),
        )),
        None => None,
    };
    let mut daemon = isop::daemon::Daemon::new(isop::daemon::DaemonConfig {
        engine: EngineConfig {
            cores: flag_f64(flags, "cores", 0.0) as usize,
            wave_slots: flag_f64(flags, "wave-slots", 4.0) as usize,
            pipeline: IsopConfig::default(),
        },
        quota_em_seconds: flag_f64(flags, "quota-em", 0.0),
        quota_window_epochs: flag_f64(flags, "quota-window", 4.0) as u64,
        chaos_crash_after_waves: 0,
    })
    .with_telemetry(telemetry.clone());
    if let Some(s) = &store {
        daemon = daemon.with_store(Arc::clone(s));
        let recovery = daemon.recover()?;
        if recovery.jobs_replayed + recovery.jobs_resumed > 0 {
            println!(
                "daemon: recovered journal — {} finished job(s) replayed, \
                 {} job(s) resuming across {} epoch(s)",
                recovery.jobs_replayed, recovery.jobs_resumed, recovery.epochs_pending
            );
        }
    }
    let listener =
        std::net::TcpListener::bind(addr.as_str()).map_err(|e| format!("listen {addr}: {e}"))?;
    println!("daemon: listening on {addr} (NDJSON; ops: submit, cancel, status, report, shutdown)");
    let daemon = Arc::new(daemon);
    daemon.serve(listener).map_err(|e| e.to_string())?;
    println!(
        "daemon: drained and stopped — {} epoch(s), {} job(s) submitted, {} refused by quota",
        telemetry.counter(Counter::DaemonEpochs),
        telemetry.counter(Counter::DaemonJobsSubmitted),
        telemetry.counter(Counter::QuotaRefusals)
    );
    Ok(())
}

/// Renders an engine run as a per-job table plus the headline totals.
fn print_engine_summary(rep: &isop::engine::EngineReport) {
    println!(
        "engine: {} job(s) in {} wave(s) on {} core permit(s) (peak leased {}), wall {:.2}s",
        rep.jobs.len(),
        rep.waves,
        rep.cores,
        rep.peak_core_permits,
        rep.wall_seconds
    );
    println!(
        "charged EM {:.1}s, elided {:.1}s, {} cross-job hit(s)",
        rep.em_seconds_charged, rep.em_seconds_saved, rep.cross_job_hits
    );
    let mut table = isop::report::Table::new(vec![
        "job",
        "tenant",
        "task",
        "space",
        "wave",
        "resolution",
        "ok",
        "charged s",
        "saved s",
    ]);
    for j in &rep.jobs {
        table.push_row(vec![
            j.id.clone(),
            j.tenant.clone(),
            j.task.clone(),
            j.space.clone(),
            j.wave.to_string(),
            j.resolution.clone(),
            j.success.to_string(),
            format!("{:.1}", j.em_seconds_charged),
            format!("{:.1}", j.em_seconds_saved),
        ]);
    }
    println!("{}", table.to_markdown());
}

/// `job-{id}.json`, with anything filesystem-hostile in the id mapped
/// to `-`.
fn job_report_file_name(id: &str) -> String {
    let safe: String = id
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '-'
            }
        })
        .collect();
    format!("job-{safe}.json")
}

/// Writes one tagged per-job report per job plus the aggregated engine
/// report into `dir` — the layout `isop report --aggregate` consumes.
fn write_engine_reports(dir: &str, rep: &isop::engine::EngineReport) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
    let base = std::path::Path::new(dir);
    for job in &rep.jobs {
        let path = base.join(job_report_file_name(&job.id));
        let json = job.report.to_json().map_err(|e| format!("{e:?}"))?;
        std::fs::write(&path, json).map_err(|e| format!("{}: {e}", path.display()))?;
    }
    let path = base.join("engine_report.json");
    let json = serde_json::to_string(rep).map_err(|e| format!("{e:?}"))?;
    std::fs::write(&path, json).map_err(|e| format!("{}: {e}", path.display()))?;
    println!(
        "wrote {} job report(s) + engine_report.json to {dir}",
        rep.jobs.len()
    );
    Ok(())
}

/// A pipeline configuration sized for the demo batch — the bench-gate
/// smoke shape, so `engine bench` finishes in seconds.
fn demo_pipeline() -> IsopConfig {
    IsopConfig {
        harmonica: isop_hpo::harmonica::HarmonicaConfig {
            stages: 2,
            samples_per_stage: 120,
            top_monomials: 6,
            bits_per_stage: 8,
            ..isop_hpo::harmonica::HarmonicaConfig::default()
        },
        hyperband: isop_hpo::hyperband::HyperbandConfig {
            max_resource: 3.0,
            eta: 3.0,
        },
        gd_candidates: 4,
        gd_epochs: 25,
        cand_num: 3,
        ..IsopConfig::default()
    }
}

/// The built-in four-job demo batch: two tenants, each submitting one
/// fresh space and one rerun of it. Fair admission at two slots puts the
/// fresh pair in wave 0 and the reruns in wave 1, so wave 1 runs almost
/// entirely from the records wave 0 flushed.
fn demo_queue(seed: u64) -> JobQueue {
    let mut queue = JobQueue::new();
    for (id, tenant, space) in [
        ("acme-s1", "acme", "s1"),
        ("acme-s1-rerun", "acme", "s1"),
        ("blue-s2", "blue", "s2"),
        ("blue-s2-rerun", "blue", "s2"),
    ] {
        queue.push(JobSpec {
            id: id.to_string(),
            tenant: tenant.to_string(),
            space: space.to_string(),
            seed,
            threads: 2,
            ..JobSpec::default()
        });
    }
    queue
}

/// Runs the demo batch serially (one core permit, one wave slot) and
/// concurrently, each against its own fresh store, and prints the
/// throughput and cross-job-elision numbers side by side.
fn cmd_engine_bench(flags: &HashMap<String, String>) -> Result<(), String> {
    let seed = flag_f64(flags, "seed", 3.0) as u64;
    let cores = flag_f64(flags, "cores", 0.0) as usize;
    let queue = demo_queue(seed);
    let scratch = std::env::temp_dir().join(format!("isop-engine-bench-{}", std::process::id()));
    let run = |label: &str, cores: usize, wave_slots: usize| -> Result<_, String> {
        let dir = scratch.join(label);
        let telemetry = Telemetry::enabled();
        let store = Arc::new(
            Store::open(&dir)
                .map_err(|e| format!("{}: {e}", dir.display()))?
                .with_telemetry(telemetry.clone()),
        );
        Engine::new(EngineConfig {
            cores,
            wave_slots,
            pipeline: demo_pipeline(),
        })
        .with_telemetry(telemetry)
        .with_store(store)
        .run(&queue)
    };
    let serial = run("serial", 1, 1)?;
    let concurrent = run("concurrent", cores, 2)?;
    let _ = std::fs::remove_dir_all(&scratch);
    println!(
        "serial    : wall {:.2}s ({} waves, 1 core permit)",
        serial.wall_seconds, serial.waves
    );
    println!(
        "concurrent: wall {:.2}s ({} waves, {} core permits, peak leased {})",
        concurrent.wall_seconds, concurrent.waves, concurrent.cores, concurrent.peak_core_permits
    );
    println!(
        "speedup {:.2}x; cross-job: {} hit(s), {:.1}s EM elided of {:.1}s charged + elided",
        serial.wall_seconds / concurrent.wall_seconds.max(1e-9),
        concurrent.cross_job_hits,
        concurrent.em_seconds_saved,
        concurrent.em_seconds_charged + concurrent.em_seconds_saved
    );
    print_engine_summary(&concurrent);
    if let Some(dir) = flags.get("report-dir") {
        write_engine_reports(dir, &concurrent)?;
    }
    Ok(())
}

fn cmd_engine(action: &str, flags: &HashMap<String, String>) -> Result<(), String> {
    match action {
        "bench" => cmd_engine_bench(flags),
        other => Err(format!("unknown engine action '{other}' (use bench)")),
    }
}

/// Folds a directory of per-job run reports into one per-tenant table.
fn cmd_report(flags: &HashMap<String, String>) -> Result<(), String> {
    let dir = flags
        .get("aggregate")
        .ok_or("report requires --aggregate DIR")?;
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("{dir}: {e}"))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    let mut reports = Vec::new();
    let mut skipped = 0usize;
    for path in &paths {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        // Non-report JSON (e.g. the engine_report.json written alongside
        // the per-job files) simply doesn't parse as a RunReport; skip it.
        match RunReport::from_json(&text) {
            Ok(rep) => reports.push(rep),
            Err(_) => skipped += 1,
        }
    }
    if reports.is_empty() {
        return Err(format!("no run reports found in {dir}"));
    }
    let rows = isop::engine::aggregate_by_tenant(&reports);
    println!(
        "{} run report(s) in {dir} ({} non-report file(s) skipped)",
        reports.len(),
        skipped
    );
    let mut table = isop::report::Table::new(vec![
        "tenant",
        "jobs",
        "ok",
        "full",
        "degraded",
        "failed",
        "charged s",
        "saved s",
        "hit rate",
    ]);
    for row in &rows {
        table.push_row(vec![
            row.tenant.clone(),
            row.jobs.to_string(),
            row.succeeded.to_string(),
            row.full.to_string(),
            row.degraded.to_string(),
            row.failed.to_string(),
            format!("{:.1}", row.em_seconds_charged),
            format!("{:.1}", row.em_seconds_saved),
            format!("{:.3}", row.cache_hit_rate()),
        ]);
    }
    println!("{}", table.to_markdown());
    if let Some(out) = flags.get("out") {
        if let Some(parent) = std::path::Path::new(out).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| e.to_string())?;
            }
        }
        let json = serde_json::to_string(&rows).map_err(|e| format!("{e:?}"))?;
        std::fs::write(out, json).map_err(|e| format!("{out}: {e}"))?;
        println!("wrote per-tenant aggregate to {out}");
    }
    Ok(())
}

/// Administers a persistent evaluation store: inspect, checksum-verify,
/// compact, and exchange records with the legacy JSON spill format.
fn cmd_cache(action: &str, flags: &HashMap<String, String>) -> Result<(), String> {
    let dir = flags
        .get("cache-dir")
        .ok_or("cache requires --cache-dir DIR")?;
    let path = std::path::Path::new(dir);
    let store = Store::open(path).map_err(|e| format!("cache-dir {dir}: {e}"))?;
    match action {
        "stats" => {
            let s = store.stats().map_err(|e| e.to_string())?;
            // One table: per-space shard occupancy first (which shard each
            // space hashes to, how many records it holds), then the
            // store-wide tallies including the cross-job hit counter.
            let records = store.load_all_evals().map_err(|e| e.to_string())?;
            let mut by_space: std::collections::BTreeMap<u64, u64> =
                std::collections::BTreeMap::new();
            for rec in &records {
                *by_space.entry(rec.space_id).or_insert(0) += 1;
            }
            println!("eval-store at {dir}");
            let mut table = isop::report::Table::new(vec!["row", "shard", "value"]);
            for (space_id, n) in &by_space {
                table.push_row(vec![
                    format!("space {space_id:#014x}"),
                    format!("{:03}", store.shard_of(*space_id)),
                    n.to_string(),
                ]);
            }
            table.push_row(vec![
                "eval records".to_string(),
                format!("{}/{} file(s)", s.shards, s.n_shards),
                s.eval_records.to_string(),
            ]);
            table.push_row(vec![
                "model records".to_string(),
                "-".to_string(),
                s.model_records.to_string(),
            ]);
            table.push_row(vec![
                "skipped records".to_string(),
                "-".to_string(),
                s.skipped.to_string(),
            ]);
            table.push_row(vec![
                "bytes on disk".to_string(),
                "-".to_string(),
                s.bytes.to_string(),
            ]);
            table.push_row(vec![
                "cross-job hits".to_string(),
                "-".to_string(),
                s.cross_job_hits.to_string(),
            ]);
            println!("{}", table.to_markdown());
            Ok(())
        }
        "verify" => {
            let shards = store.verify().map_err(|e| e.to_string())?;
            let mut skipped = 0u64;
            for sh in &shards {
                println!(
                    "shard {:03}: {} valid record(s), {} skipped, {} byte(s)",
                    sh.shard, sh.valid, sh.skipped, sh.bytes
                );
                skipped += sh.skipped;
            }
            if skipped > 0 {
                Err(format!(
                    "{skipped} corrupted record(s) skipped; run `isop cache compact` to drop them"
                ))
            } else {
                println!("all records verify");
                Ok(())
            }
        }
        "compact" => {
            let c = store.compact().map_err(|e| e.to_string())?;
            println!(
                "compacted {dir}: {} -> {} record(s)",
                c.records_before, c.records_after
            );
            Ok(())
        }
        "export" => {
            let out = flags.get("out").ok_or("export requires --out FILE")?;
            let records = store.load_all_evals().map_err(|e| e.to_string())?;
            let cache = isop::evalcache::EvalCache::new();
            let n = records.len();
            for rec in records {
                cache.insert(
                    isop::evalcache::DesignKey {
                        space_id: rec.space_id,
                        levels: rec.levels,
                    },
                    isop::evalcache::CachedSim {
                        result: SimulationResult {
                            z_diff: rec.metrics[0],
                            insertion_loss: rec.metrics[1],
                            next: rec.metrics[2],
                        },
                        attempts: rec.attempts,
                    },
                );
            }
            cache
                .export_json(std::path::Path::new(out))
                .map_err(|e| e.to_string())?;
            println!("exported {n} record(s) to {out}");
            Ok(())
        }
        "import" => {
            let file = flags.get("file").ok_or("import requires --file FILE")?;
            let cache = isop::evalcache::EvalCache::with_store(Arc::new(store));
            let n = cache
                .load_json(std::path::Path::new(file))
                .map_err(|e| e.to_string())?;
            cache.persist().map_err(|e| e.to_string())?;
            println!("imported {n} record(s) from {file} into {dir}");
            Ok(())
        }
        other => Err(format!(
            "unknown cache action '{other}' (use stats, verify, compact, export, import)"
        )),
    }
}

fn usage() {
    eprintln!(
        "isop — inverse stack-up optimization\n\n\
         USAGE:\n  isop simulate [--w 5] [--s 6] [--d 30] [--dk 3.6] [--df 0.008] [--engine fd]\n  \
         isop optimize --task t1 --space s1 [--seed 42] [--trials 1] [--threads 4] [--with-ic]\n           \
         [--em-fault-rate 0.3] [--em-permanent-rate 0.05] [--em-retries 3]\n           \
         [--report] [--report-out results/run_report.json]\n  \
         isop spaces\n  \
         isop dataset --n 1000 --out dataset.json [--space training]\n  \
         isop cache stats|verify|compact --cache-dir DIR\n  \
         isop cache export --cache-dir DIR --out em_cache.json\n  \
         isop cache import --cache-dir DIR --file em_cache.json\n  \
         isop serve --jobs jobs.json [--cores 8] [--wave-slots 4] [--cache-dir DIR]\n           \
         [--report-dir results/engine]\n  \
         isop daemon --listen 127.0.0.1:7878 [--cache-dir DIR] [--cores 8] [--wave-slots 4]\n           \
         [--quota-em SECONDS] [--quota-window EPOCHS]\n  \
         isop engine bench [--seed 3] [--cores 8] [--report-dir results/engine]\n  \
         isop report --aggregate results/engine [--out tenants.json]\n\n\
         Bare flags default to optimize: `isop --report --threads 4`.\n\
         `optimize --cache-dir DIR` reuses accurate EM results across runs.\n\
         `serve` runs many jobs concurrently over one shared core budget;\n\
         with --cache-dir, same-space jobs warm-start each other.\n\
         `daemon` serves NDJSON submit/cancel/status/report over TCP with a\n\
         crash-safe job journal in --cache-dir."
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(first) = args.first() else {
        usage();
        return ExitCode::FAILURE;
    };
    // Bare-flag invocations (`isop --report --threads 4`) default to the
    // optimize subcommand, except the help flags.
    let (cmd, flag_args): (&str, &[String]) =
        if first.starts_with("--") && first != "--help" && first != "-h" {
            ("optimize", &args[..])
        } else {
            (first.as_str(), &args[1..])
        };
    // `cache` and `engine` take a positional action (`isop cache stats
    // --cache-dir ...`) before the flags, which the generic flag parser
    // would reject as stray.
    if cmd == "cache" || cmd == "engine" {
        let Some(action) = flag_args.first() else {
            usage();
            return ExitCode::FAILURE;
        };
        let flags = parse_flags(&flag_args[1..]);
        let result = if cmd == "cache" {
            cmd_cache(action, &flags)
        } else {
            cmd_engine(action, &flags)
        };
        return match result {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let flags = parse_flags(flag_args);
    let result = match cmd {
        "simulate" => cmd_simulate(&flags),
        "optimize" => cmd_optimize(&flags),
        "spaces" => {
            cmd_spaces();
            Ok(())
        }
        "dataset" => cmd_dataset(&flags),
        "serve" => cmd_serve(&flags),
        "daemon" => cmd_daemon(&flags),
        "report" => cmd_report(&flags),
        "help" | "--help" | "-h" => {
            usage();
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            ExitCode::FAILURE
        }
    }
}
