//! Regression evaluation metrics.
//!
//! The paper's Table VI uses MAE and MAPE for impedance and loss, and sMAPE
//! for crosstalk (which can be exactly zero, where MAPE degenerates).

/// Mean absolute error.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mae(truth: &[f64], pred: &[f64]) -> f64 {
    check(truth, pred);
    truth
        .iter()
        .zip(pred)
        .map(|(t, p)| (t - p).abs())
        .sum::<f64>()
        / truth.len() as f64
}

/// Mean absolute percentage error, as a fraction (0.05 = 5%).
///
/// Samples with `|truth| < 1e-12` are skipped to avoid division blow-ups; if
/// every sample is skipped the result is `NaN` (prefer [`smape`] for targets
/// that may be zero).
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mape(truth: &[f64], pred: &[f64]) -> f64 {
    check(truth, pred);
    let mut total = 0.0;
    let mut n = 0usize;
    for (t, p) in truth.iter().zip(pred) {
        if t.abs() >= 1e-12 {
            total += ((t - p) / t).abs();
            n += 1;
        }
    }
    if n == 0 {
        f64::NAN
    } else {
        total / n as f64
    }
}

/// Symmetric mean absolute percentage error, as a fraction in `[0, 2]`.
///
/// `smape = mean(2 |t - p| / (|t| + |p|))`, with exact-zero pairs contributing
/// zero error.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn smape(truth: &[f64], pred: &[f64]) -> f64 {
    check(truth, pred);
    truth
        .iter()
        .zip(pred)
        .map(|(t, p)| {
            let denom = t.abs() + p.abs();
            if denom < 1e-12 {
                0.0
            } else {
                2.0 * (t - p).abs() / denom
            }
        })
        .sum::<f64>()
        / truth.len() as f64
}

/// Mean squared error.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mse(truth: &[f64], pred: &[f64]) -> f64 {
    check(truth, pred);
    truth
        .iter()
        .zip(pred)
        .map(|(t, p)| (t - p) * (t - p))
        .sum::<f64>()
        / truth.len() as f64
}

/// Coefficient of determination R^2 (1 = perfect, 0 = mean predictor).
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn r2(truth: &[f64], pred: &[f64]) -> f64 {
    check(truth, pred);
    let mean = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_tot: f64 = truth.iter().map(|t| (t - mean) * (t - mean)).sum();
    let ss_res: f64 = truth.iter().zip(pred).map(|(t, p)| (t - p) * (t - p)).sum();
    if ss_tot < 1e-12 {
        if ss_res < 1e-12 {
            1.0
        } else {
            f64::NEG_INFINITY
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

fn check(truth: &[f64], pred: &[f64]) {
    assert_eq!(truth.len(), pred.len(), "metric length mismatch");
    assert!(!truth.is_empty(), "metrics need at least one sample");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let t = [1.0, 2.0, 3.0];
        assert_eq!(mae(&t, &t), 0.0);
        assert_eq!(mape(&t, &t), 0.0);
        assert_eq!(smape(&t, &t), 0.0);
        assert_eq!(mse(&t, &t), 0.0);
        assert_eq!(r2(&t, &t), 1.0);
    }

    #[test]
    fn mae_known_value() {
        assert!((mae(&[1.0, 2.0], &[2.0, 4.0]) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn mape_known_value() {
        // errors: 50% and 10%.
        let v = mape(&[2.0, 10.0], &[3.0, 9.0]);
        assert!((v - 0.3).abs() < 1e-12);
    }

    #[test]
    fn mape_skips_zero_truth() {
        let v = mape(&[0.0, 10.0], &[1.0, 11.0]);
        assert!((v - 0.1).abs() < 1e-12);
    }

    #[test]
    fn smape_handles_zeros() {
        assert_eq!(smape(&[0.0], &[0.0]), 0.0);
        // truth 0, pred 1: 2*1/(0+1) = 2 (max).
        assert!((smape(&[0.0], &[1.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn smape_bounded_by_two() {
        let v = smape(&[1.0, -5.0, 0.0], &[-1.0, 5.0, 3.0]);
        assert!(v <= 2.0 + 1e-12);
    }

    #[test]
    fn r2_of_mean_predictor_is_zero() {
        let t = [1.0, 2.0, 3.0, 4.0];
        let mean = [2.5; 4];
        assert!(r2(&t, &mean).abs() < 1e-12);
    }

    #[test]
    fn r2_penalizes_bad_fit() {
        let t = [1.0, 2.0, 3.0];
        let bad = [3.0, 2.0, 1.0];
        assert!(r2(&t, &bad) < 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = mae(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_panics() {
        let _ = mae(&[], &[]);
    }
}
