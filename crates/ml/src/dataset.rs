//! Tabular regression datasets: containers, splits, and standardization.

use crate::linalg::Matrix;
use crate::MlError;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A tabular dataset of features `x` (`n x d`) and targets `y` (`n x m`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Feature matrix, one sample per row.
    pub x: Matrix,
    /// Target matrix, one sample per row (multi-output supported).
    pub y: Matrix,
}

impl Dataset {
    /// Creates a dataset after checking row agreement.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] when `x` and `y` row counts differ
    /// and [`MlError::EmptyDataset`] for zero samples.
    pub fn new(x: Matrix, y: Matrix) -> Result<Self, MlError> {
        if x.rows() != y.rows() {
            return Err(MlError::ShapeMismatch {
                expected: x.rows(),
                got: y.rows(),
            });
        }
        if x.rows() == 0 {
            return Err(MlError::EmptyDataset);
        }
        Ok(Self { x, y })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.x.rows()
    }

    /// `true` when the dataset holds no samples (unreachable through
    /// [`Dataset::new`], but required by convention next to `len`).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.x.cols()
    }

    /// Number of target outputs.
    pub fn n_outputs(&self) -> usize {
        self.y.cols()
    }

    /// Returns a dataset containing the rows at `indices`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut x = Matrix::zeros(indices.len(), self.n_features());
        let mut y = Matrix::zeros(indices.len(), self.n_outputs());
        for (i, &idx) in indices.iter().enumerate() {
            x.row_mut(i).copy_from_slice(self.x.row(idx));
            y.row_mut(i).copy_from_slice(self.y.row(idx));
        }
        Dataset { x, y }
    }

    /// Deterministic shuffled train/test split: `test_fraction` of the rows
    /// (rounded down, at least one row in each side when possible) go to the
    /// test set.
    ///
    /// # Panics
    ///
    /// Panics if `test_fraction` is outside `(0, 1)`.
    pub fn train_test_split(&self, test_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        assert!(
            test_fraction > 0.0 && test_fraction < 1.0,
            "test_fraction must be in (0, 1)"
        );
        let n = self.len();
        let mut idx: Vec<usize> = (0..n).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        let n_test = ((n as f64 * test_fraction) as usize).clamp(1, n - 1);
        let (test_idx, train_idx) = idx.split_at(n_test);
        (self.subset(train_idx), self.subset(test_idx))
    }

    /// Splits the dataset into `k` contiguous folds of shuffled rows for
    /// cross-validation; returns `(train, validation)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or `k > len()`.
    pub fn k_folds(&self, k: usize, seed: u64) -> Vec<(Dataset, Dataset)> {
        assert!(k >= 2 && k <= self.len(), "invalid fold count {k}");
        let mut idx: Vec<usize> = (0..self.len()).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        let fold_size = self.len() / k;
        (0..k)
            .map(|f| {
                let lo = f * fold_size;
                let hi = if f == k - 1 {
                    self.len()
                } else {
                    lo + fold_size
                };
                let val: Vec<usize> = idx[lo..hi].to_vec();
                let train: Vec<usize> = idx[..lo].iter().chain(&idx[hi..]).copied().collect();
                (self.subset(&train), self.subset(&val))
            })
            .collect()
    }
}

/// Per-column standardizer (`z = (x - mean) / std`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Scaler {
    /// Fits a scaler to the columns of `m`. Columns with zero variance get a
    /// unit scale so transforms stay finite.
    pub fn fit(m: &Matrix) -> Self {
        let (n, d) = (m.rows(), m.cols());
        let mut means = vec![0.0; d];
        let mut stds = vec![0.0; d];
        for r in 0..n {
            for (c, v) in m.row(r).iter().enumerate() {
                means[c] += v;
            }
        }
        for mean in &mut means {
            *mean /= n as f64;
        }
        for r in 0..n {
            for (c, v) in m.row(r).iter().enumerate() {
                let dv = v - means[c];
                stds[c] += dv * dv;
            }
        }
        for s in &mut stds {
            *s = (*s / n as f64).sqrt();
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        Self { means, stds }
    }

    /// Applies the transform, returning a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the fitted one.
    pub fn transform(&self, m: &Matrix) -> Matrix {
        assert_eq!(m.cols(), self.means.len(), "scaler width mismatch");
        let mut out = m.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (c, v) in row.iter_mut().enumerate() {
                *v = (*v - self.means[c]) / self.stds[c];
            }
        }
        out
    }

    /// Transforms a single row in place.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the fitted width.
    pub fn transform_row(&self, row: &mut [f64]) {
        assert_eq!(row.len(), self.means.len(), "scaler width mismatch");
        for (c, v) in row.iter_mut().enumerate() {
            *v = (*v - self.means[c]) / self.stds[c];
        }
    }

    /// Inverts the transform on a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the fitted one.
    pub fn inverse_transform(&self, m: &Matrix) -> Matrix {
        assert_eq!(m.cols(), self.means.len(), "scaler width mismatch");
        let mut out = m.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (c, v) in row.iter_mut().enumerate() {
                *v = *v * self.stds[c] + self.means[c];
            }
        }
        out
    }

    /// Per-column standard deviations (scale factors).
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Per-column means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let x = Matrix::from_rows(
            &(0..10)
                .map(|i| vec![i as f64, 2.0 * i as f64])
                .collect::<Vec<_>>(),
        );
        let y = Matrix::column(&(0..10).map(|i| i as f64).collect::<Vec<_>>());
        Dataset::new(x, y).expect("valid")
    }

    #[test]
    fn new_checks_rows() {
        let x = Matrix::zeros(3, 2);
        let y = Matrix::zeros(4, 1);
        assert!(matches!(
            Dataset::new(x, y),
            Err(MlError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn new_rejects_empty() {
        assert!(matches!(
            Dataset::new(Matrix::zeros(0, 2), Matrix::zeros(0, 1)),
            Err(MlError::EmptyDataset)
        ));
    }

    #[test]
    fn split_partitions_rows() {
        let d = toy();
        let (train, test) = d.train_test_split(0.2, 7);
        assert_eq!(train.len() + test.len(), d.len());
        assert_eq!(test.len(), 2);
        // No sample duplicated: recombine and compare multisets of x[0].
        let mut all: Vec<f64> = train
            .x
            .col_vec(0)
            .into_iter()
            .chain(test.x.col_vec(0))
            .collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(all, (0..10).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let d = toy();
        let (a, _) = d.train_test_split(0.3, 42);
        let (b, _) = d.train_test_split(0.3, 42);
        assert_eq!(a, b);
        let (c, _) = d.train_test_split(0.3, 43);
        assert_ne!(a, c, "different seeds should shuffle differently");
    }

    #[test]
    fn k_folds_cover_everything() {
        let d = toy();
        let folds = d.k_folds(5, 1);
        assert_eq!(folds.len(), 5);
        let total_val: usize = folds.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total_val, d.len());
        for (train, val) in &folds {
            assert_eq!(train.len() + val.len(), d.len());
        }
    }

    #[test]
    fn subset_picks_rows() {
        let d = toy();
        let s = d.subset(&[3, 5]);
        assert_eq!(s.x.row(0), &[3.0, 6.0]);
        assert_eq!(s.y[(1, 0)], 5.0);
    }

    #[test]
    fn scaler_standardizes() {
        let d = toy();
        let sc = Scaler::fit(&d.x);
        let t = sc.transform(&d.x);
        for c in 0..t.cols() {
            let col = t.col_vec(c);
            let mean: f64 = col.iter().sum::<f64>() / col.len() as f64;
            let var: f64 = col.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / col.len() as f64;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn scaler_roundtrip() {
        let d = toy();
        let sc = Scaler::fit(&d.x);
        let back = sc.inverse_transform(&sc.transform(&d.x));
        for r in 0..d.x.rows() {
            for c in 0..d.x.cols() {
                assert!((back[(r, c)] - d.x[(r, c)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn scaler_constant_column_stays_finite() {
        let m = Matrix::from_rows(&[vec![5.0], vec![5.0], vec![5.0]]);
        let sc = Scaler::fit(&m);
        let t = sc.transform(&m);
        assert!(t.as_slice().iter().all(|v| v.is_finite()));
    }
}
