//! First-order optimizers.
//!
//! [`Adam`] (Kingma & Ba, ICLR'15) is used twice in the reproduction: to
//! train the neural surrogates, and — exactly as the paper's local
//! exploration stage does — to refine *design parameters* by descending the
//! surrogate-evaluated objective.

use serde::{Deserialize, Serialize};

/// The Adam optimizer over a flat parameter vector.
///
/// ```
/// use isop_ml::optim::Adam;
///
/// // Minimize f(x) = (x - 3)^2.
/// let mut x = vec![0.0f64];
/// let mut opt = Adam::new(0.1, 1);
/// for _ in 0..500 {
///     let grad = [2.0 * (x[0] - 3.0)];
///     opt.step(&mut x, &grad);
/// }
/// assert!((x[0] - 3.0).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Adam {
    /// Creates an optimizer for `n` parameters with learning rate `lr` and
    /// the canonical `beta1 = 0.9`, `beta2 = 0.999`.
    pub fn new(lr: f64, n: usize) -> Self {
        Self::with_betas(lr, n, 0.9, 0.999)
    }

    /// Creates an optimizer with explicit moment decay rates.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or the betas are outside `[0, 1)`.
    pub fn with_betas(lr: f64, n: usize, beta1: f64, beta2: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        Self {
            lr,
            beta1,
            beta2,
            eps: 1e-8,
            t: 0,
            m: vec![0.0; n],
            v: vec![0.0; n],
        }
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f64 {
        self.lr
    }

    /// Overrides the learning rate (e.g. for decay schedules).
    pub fn set_learning_rate(&mut self, lr: f64) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// Applies one update to `params` given `grads`.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ from the configured size.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), self.m.len(), "param length mismatch");
        assert_eq!(grads.len(), self.m.len(), "grad length mismatch");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m[i] / bc1;
            let v_hat = self.v[i] / bc2;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    /// Resets moments and step count, keeping hyperparameters.
    pub fn reset(&mut self) {
        self.t = 0;
        self.m.iter_mut().for_each(|v| *v = 0.0);
        self.v.iter_mut().for_each(|v| *v = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_quadratic_bowl() {
        let mut x = vec![5.0, -3.0];
        let mut opt = Adam::new(0.05, 2);
        for _ in 0..2000 {
            let g = [2.0 * x[0], 4.0 * x[1]];
            opt.step(&mut x, &g);
        }
        assert!(x[0].abs() < 1e-3 && x[1].abs() < 1e-3, "x = {x:?}");
    }

    #[test]
    fn converges_on_rosenbrock_ish() {
        // Minimize (1-x)^2 + 10 (y - x^2)^2 — a mildly ill-conditioned valley.
        let mut p = vec![-1.0, 1.0];
        let mut opt = Adam::new(0.02, 2);
        for _ in 0..8000 {
            let (x, y) = (p[0], p[1]);
            let g = [
                -2.0 * (1.0 - x) - 40.0 * x * (y - x * x),
                20.0 * (y - x * x),
            ];
            opt.step(&mut p, &g);
        }
        assert!(
            (p[0] - 1.0).abs() < 0.05 && (p[1] - 1.0).abs() < 0.1,
            "p = {p:?}"
        );
    }

    #[test]
    fn first_step_magnitude_is_lr() {
        // Adam's bias correction makes the very first step ~= lr * sign(g).
        let mut x = vec![0.0];
        let mut opt = Adam::new(0.1, 1);
        opt.step(&mut x, &[123.0]);
        assert!((x[0] + 0.1).abs() < 1e-6, "x = {}", x[0]);
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut opt = Adam::new(0.1, 1);
        let mut x = vec![0.0];
        opt.step(&mut x, &[1.0]);
        opt.reset();
        let mut y = vec![0.0];
        opt.step(&mut y, &[1.0]);
        assert!((x[0] - y[0]).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "param length mismatch")]
    fn wrong_length_panics() {
        let mut opt = Adam::new(0.1, 2);
        let mut x = vec![0.0];
        opt.step(&mut x, &[1.0]);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn zero_lr_rejected() {
        let _ = Adam::new(0.0, 1);
    }
}
