//! Permutation feature importance.
//!
//! Model-agnostic importance: shuffle one feature column at a time and
//! measure how much the prediction error degrades. In the stack-up setting
//! this recovers the designer's intuition quantitatively (e.g. trace width
//! and dielectric heights dominate `Z`; `Df` and roughness dominate `L`) and
//! is the standard sanity check before trusting a surrogate inside an
//! optimizer.

use crate::dataset::Dataset;
use crate::linalg::Matrix;
use crate::metrics::mse;
use crate::{MlError, Regressor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Importance scores for every feature, per output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImportanceReport {
    /// `scores[output][feature]` = MSE increase when that feature is
    /// permuted (averaged over repeats), normalized by the baseline MSE.
    pub scores: Vec<Vec<f64>>,
    /// Baseline per-output MSE of the unpermuted data.
    pub baseline_mse: Vec<f64>,
}

impl ImportanceReport {
    /// Features of output `o`, ranked by importance descending.
    ///
    /// # Panics
    ///
    /// Panics if `o` is out of range.
    pub fn ranking(&self, o: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.scores[o].len()).collect();
        idx.sort_by(|&a, &b| {
            self.scores[o][b]
                .partial_cmp(&self.scores[o][a])
                .expect("finite scores")
        });
        idx
    }
}

/// Computes permutation importance of `model` on `data` with `repeats`
/// shuffles per feature.
///
/// # Errors
///
/// Propagates prediction failures from the model.
///
/// # Panics
///
/// Panics if `repeats == 0`.
pub fn permutation_importance(
    model: &dyn Regressor,
    data: &Dataset,
    repeats: usize,
    seed: u64,
) -> Result<ImportanceReport, MlError> {
    assert!(repeats > 0, "need at least one repeat");
    let n = data.len();
    let d = data.n_features();
    let m = data.n_outputs();

    let base_pred = model.predict(&data.x)?;
    let baseline_mse: Vec<f64> = (0..m)
        .map(|c| mse(&data.y.col_vec(c), &base_pred.col_vec(c)))
        .collect();

    let mut rng = StdRng::seed_from_u64(seed);
    let mut scores = vec![vec![0.0; d]; m];
    let mut x_perm = data.x.clone();
    for f in 0..d {
        for _ in 0..repeats {
            // Shuffle column f.
            let mut col: Vec<f64> = data.x.col_vec(f);
            col.shuffle(&mut rng);
            for r in 0..n {
                x_perm[(r, f)] = col[r];
            }
            let pred = model.predict(&x_perm)?;
            for o in 0..m {
                let e = mse(&data.y.col_vec(o), &pred.col_vec(o));
                scores[o][f] += (e - baseline_mse[o]) / baseline_mse[o].max(1e-12);
            }
        }
        // Restore the column.
        for r in 0..n {
            x_perm[(r, f)] = data.x[(r, f)];
        }
        for score in scores.iter_mut() {
            score[f] /= repeats as f64;
        }
    }
    Ok(ImportanceReport {
        scores,
        baseline_mse,
    })
}

/// Convenience: importance against a fresh prediction target built from an
/// `n x d` feature matrix and an `n x m` target matrix.
///
/// # Errors
///
/// Propagates dataset-construction and prediction failures.
pub fn permutation_importance_xy(
    model: &dyn Regressor,
    x: Matrix,
    y: Matrix,
    repeats: usize,
    seed: u64,
) -> Result<ImportanceReport, MlError> {
    let data = Dataset::new(x, y)?;
    permutation_importance(model, &data, repeats, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::PolynomialRidge;

    /// y depends only on x0 (strongly) and x1 (weakly); x2 is noise.
    fn fitted_model_and_data() -> (PolynomialRidge, Dataset) {
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        let mut state = 0x12345u64;
        let mut rand01 = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 1000.0
        };
        for _ in 0..400 {
            let (a, b, c) = (rand01(), rand01(), rand01());
            rows.push(vec![a, b, c]);
            ys.push(5.0 * a + 0.5 * b);
        }
        let data = Dataset::new(Matrix::from_rows(&rows), Matrix::column(&ys)).expect("valid");
        let mut model = PolynomialRidge::new(1, 1e-9);
        model.fit(&data).expect("fits");
        (model, data)
    }

    #[test]
    fn dominant_feature_ranks_first() {
        let (model, data) = fitted_model_and_data();
        let report = permutation_importance(&model, &data, 3, 0).expect("ok");
        let ranking = report.ranking(0);
        assert_eq!(ranking[0], 0, "x0 must dominate: {:?}", report.scores[0]);
        assert!(report.scores[0][0] > report.scores[0][1]);
        assert!(report.scores[0][1] > report.scores[0][2] - 1e-6);
    }

    #[test]
    fn irrelevant_feature_scores_near_zero() {
        let (model, data) = fitted_model_and_data();
        let report = permutation_importance(&model, &data, 3, 1).expect("ok");
        // x2 never enters y; permuting it changes (almost) nothing relative
        // to the dominant feature.
        assert!(
            report.scores[0][2].abs() < 0.05 * report.scores[0][0].max(1e-9),
            "noise feature importance too high: {:?}",
            report.scores[0]
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let (model, data) = fitted_model_and_data();
        let a = permutation_importance(&model, &data, 2, 7).expect("ok");
        let b = permutation_importance(&model, &data, 2, 7).expect("ok");
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one repeat")]
    fn zero_repeats_panics() {
        let (model, data) = fitted_model_and_data();
        let _ = permutation_importance(&model, &data, 0, 0);
    }
}
