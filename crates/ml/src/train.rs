//! Training-time execution context for the model zoo's data-parallel
//! engine.
//!
//! Models never store a thread count (their serialized form stays exactly
//! what it was); instead every `fit` path accepts a [`TrainContext`]
//! carrying the [`Parallelism`] knob and an optional telemetry handle.
//! [`crate::Regressor::fit`] delegates to
//! [`crate::Regressor::fit_with`] with the serial default, so existing
//! call sites keep their behavior.
//!
//! Determinism contract (shared with `isop-exec`): for every model,
//! `threads = 1` is bit-identical to `threads = N`. The engine guarantees
//! this by (a) drawing **all** random numbers serially before a parallel
//! section (bootstrap indices, per-tree split seeds, dropout masks),
//! (b) chunking work on fixed boundaries that depend only on the data
//! size ([`isop_exec::fixed_chunks`]), and (c) reducing floating-point
//! partials in input order.

use isop_exec::Parallelism;
use isop_telemetry::Telemetry;

/// Rows per gradient chunk for MLP minibatch backprop. Fixed — never a
/// function of the thread count — so chunked gradient reductions associate
/// identically at any parallelism width. 16 rows also keeps the chunk on
/// the batched `matmul` fast path.
pub const MLP_CHUNK_ROWS: usize = 16;

/// Samples per gradient chunk for 1D-CNN minibatch backprop (per-sample
/// cost is much higher than the MLP's, so chunks are smaller to balance
/// workers).
pub const CNN_CHUNK_ROWS: usize = 8;

/// Rows per in-place update chunk for boosting's residual fill and
/// per-stage prediction update. Large, because the per-row work is tiny
/// and a stage dispatches two updates — the chunk has to amortize spawn
/// latency. Fixed, so boosted models are bit-identical at any width.
pub const BOOST_ROW_CHUNK: usize = 512;

/// Minimum `rows * features` work for a tree-split scan to fan the
/// per-feature sweep out to workers; smaller nodes stay inline (spawn
/// latency would dominate). Purely size-based, so the parallel/serial
/// choice is identical at every thread count.
pub const SPLIT_SCAN_MIN_WORK: usize = 1 << 14;

/// Execution context handed to [`crate::Regressor::fit_with`]: how many
/// worker threads training may use, and where to record `ml.fit.*` spans
/// and `train.chunks` counters.
#[derive(Debug, Clone, Default)]
pub struct TrainContext {
    /// Worker-thread knob for the data-parallel sections of `fit`.
    pub parallelism: Parallelism,
    /// Telemetry sink for training spans/counters (disabled by default).
    pub telemetry: Telemetry,
}

impl TrainContext {
    /// A context training on `parallelism` with telemetry disabled.
    #[must_use]
    pub fn new(parallelism: Parallelism) -> Self {
        Self {
            parallelism,
            telemetry: Telemetry::default(),
        }
    }

    /// A fully serial context with telemetry disabled — what bare
    /// [`crate::Regressor::fit`] uses.
    #[must_use]
    pub fn serial() -> Self {
        Self::default()
    }

    /// Replaces the telemetry sink, keeping the thread knob.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The context an outer parallel section hands to nested fits: serial
    /// execution (no spawn-on-spawn), same telemetry. Used when an
    /// ensemble trains members on parallel workers — the members must see
    /// the *same* inner context at every outer width for bit-identity.
    #[must_use]
    pub fn nested(&self) -> Self {
        Self {
            parallelism: Parallelism::serial(),
            telemetry: self.telemetry.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_context_is_serial_and_disabled() {
        let ctx = TrainContext::default();
        assert_eq!(ctx.parallelism.threads, 1);
        assert!(!ctx.telemetry.is_enabled());
        assert_eq!(TrainContext::serial().parallelism.threads, 1);
    }

    #[test]
    fn nested_context_is_serial_but_keeps_telemetry() {
        let tele = Telemetry::enabled();
        let ctx = TrainContext::new(Parallelism::new(8)).with_telemetry(tele.clone());
        let inner = ctx.nested();
        assert_eq!(inner.parallelism.threads, 1);
        assert!(inner.telemetry.is_enabled());
        inner.telemetry.incr(isop_telemetry::Counter::TrainChunks);
        assert_eq!(tele.counter(isop_telemetry::Counter::TrainChunks), 1);
    }
}
