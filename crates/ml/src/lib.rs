//! # isop-ml — from-scratch tabular regression for surrogate modelling
//!
//! The machine-learning substrate of the ISOP+ reproduction. Implements, in
//! pure Rust with no numerical dependencies, every regressor the paper's
//! Table VI compares:
//!
//! | Paper name | Type |
//! |---|---|
//! | DTR | [`models::DecisionTree`] — CART regression tree |
//! | RFR | [`models::RandomForest`] — bagged trees |
//! | GBR | [`models::GradientBoosting`] — first-order boosted trees |
//! | XGBoost | [`models::XgbRegressor`] — second-order regularized boosting |
//! | PLR | [`models::PolynomialRidge`] — degree-2 ridge regression |
//! | SVR | [`models::LinearSvr`] — epsilon-insensitive SGD |
//! | MLPR | [`models::Mlp`] — multilayer perceptron |
//! | 1D-CNN | [`models::Cnn1d`] — FC-expand + 1-D convolutions |
//!
//! The neural models additionally expose **gradients with respect to their
//! inputs** ([`Differentiable`]), which the ISOP+ local-exploration stage
//! descends with [`optim::Adam`].
//!
//! ```
//! use isop_ml::dataset::Dataset;
//! use isop_ml::linalg::Matrix;
//! use isop_ml::models::PolynomialRidge;
//! use isop_ml::Regressor;
//!
//! # fn main() -> Result<(), isop_ml::MlError> {
//! // y = x0 + 2 x1.
//! let x = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]);
//! let y = Matrix::column(&[0.0, 1.0, 2.0, 3.0]);
//! let data = Dataset::new(x.clone(), y)?;
//! let mut model = PolynomialRidge::new(1, 1e-6);
//! model.fit(&data)?;
//! let pred = model.predict(&x)?;
//! assert!((pred[(3, 0)] - 3.0).abs() < 1e-3);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dataset;
pub mod importance;
pub mod linalg;
pub mod metrics;
pub mod models;
pub mod optim;
pub mod registry;
pub mod train;

use dataset::Dataset;
use linalg::Matrix;
use std::fmt;

/// Errors produced by dataset handling and model training/inference.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MlError {
    /// Row/column counts disagree.
    ShapeMismatch {
        /// Expected dimension.
        expected: usize,
        /// Actual dimension.
        got: usize,
    },
    /// A dataset with zero samples was supplied.
    EmptyDataset,
    /// `predict` (or `input_jacobian`) was called before `fit`.
    NotFitted,
    /// Training diverged or produced non-finite parameters.
    Diverged,
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected}, got {got}")
            }
            MlError::EmptyDataset => write!(f, "dataset contains no samples"),
            MlError::NotFitted => write!(f, "model used before fitting"),
            MlError::Diverged => write!(f, "training diverged to non-finite parameters"),
        }
    }
}

impl std::error::Error for MlError {}

/// A multi-output tabular regressor.
///
/// All models accept an `n x d` feature matrix and an `n x m` target matrix;
/// single-output models are the `m = 1` special case.
pub trait Regressor: Send + Sync {
    /// Trains on `data`, replacing any previous fit.
    ///
    /// # Errors
    ///
    /// Returns [`MlError`] on inconsistent shapes or divergence.
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError>;

    /// Trains on `data` under an explicit [`train::TrainContext`] (thread
    /// knob + telemetry). The default implementation ignores the context
    /// and calls [`Regressor::fit`]; models with a data-parallel training
    /// path override this instead and have `fit` delegate back with the
    /// serial default. Fitted parameters are bit-identical at every
    /// `ctx.parallelism.threads` width.
    ///
    /// # Errors
    ///
    /// Returns [`MlError`] on inconsistent shapes or divergence.
    fn fit_with(&mut self, data: &Dataset, ctx: &train::TrainContext) -> Result<(), MlError> {
        let _ = ctx;
        self.fit(data)
    }

    /// Predicts targets for each row of `x` (`n x m` output).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::NotFitted`] before `fit`, or
    /// [`MlError::ShapeMismatch`] on a feature-width mismatch.
    fn predict(&self, x: &Matrix) -> Result<Matrix, MlError>;

    /// Short model name for tables (e.g. `"XGBoost"`).
    fn name(&self) -> &'static str;
}

/// A regressor that can differentiate its outputs with respect to its
/// **inputs** — the property the ISOP+ gradient-descent stage requires.
///
/// Tree ensembles are piecewise-constant and deliberately do not implement
/// this trait, mirroring the paper's remark that `MLP_XGB` cannot be paired
/// with the gradient-descent stage.
pub trait Differentiable: Regressor {
    /// Jacobian `d y / d x` at a single input row: shape `m x d`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::NotFitted`] before `fit`, or
    /// [`MlError::ShapeMismatch`] on a feature-width mismatch.
    fn input_jacobian(&self, x: &[f64]) -> Result<Matrix, MlError>;

    /// Jacobians for a batch of input rows, one `m x d` matrix per row.
    ///
    /// The default loops over [`Differentiable::input_jacobian`]; models
    /// whose backward pass vectorizes across rows can override it. Results
    /// are reported per row so one failing row does not poison the batch.
    fn input_jacobian_batch(&self, rows: &[Vec<f64>]) -> Vec<Result<Matrix, MlError>> {
        rows.iter().map(|r| self.input_jacobian(r)).collect()
    }
}

/// Convenience: predicts a single row, returning the output vector.
///
/// # Errors
///
/// Propagates the model's [`MlError`].
pub fn predict_row(model: &dyn Regressor, row: &[f64]) -> Result<Vec<f64>, MlError> {
    let x = Matrix::from_rows(&[row.to_vec()]);
    let out = model.predict(&x)?;
    Ok(out.row(0).to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = MlError::ShapeMismatch {
            expected: 3,
            got: 5,
        };
        assert_eq!(e.to_string(), "shape mismatch: expected 3, got 5");
        assert_eq!(MlError::NotFitted.to_string(), "model used before fitting");
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MlError>();
    }
}
