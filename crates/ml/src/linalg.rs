//! Dense row-major matrix arithmetic.
//!
//! A deliberately small linear-algebra kernel: exactly the operations the
//! regression models need (products, transposes, Cholesky solves), with
//! dimension checks that panic early with a clear message rather than
//! propagating NaNs.
//!
//! ```
//! use isop_ml::linalg::Matrix;
//!
//! let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! assert_eq!(a.matmul(&b), a);
//! ```

use serde::{Deserialize, Serialize};

/// A dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n x n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for r in rows {
            assert_eq!(r.len(), n_cols, "ragged rows in Matrix::from_rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: n_rows,
            cols: n_cols,
            data,
        }
    }

    /// Builds from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "flat data length mismatch");
        Self { rows, cols, data }
    }

    /// A single-column matrix from a slice.
    pub fn column(values: &[f64]) -> Self {
        Self::from_vec(values.len(), 1, values.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn col_vec(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "col index {c} out of bounds ({})", self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Flat row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics on an inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        // Same shape-based dispatch as `matmul_transposed`, picking the
        // layout each kernel wants without a redundant transpose. Callers
        // that already hold the RHS in transposed layout (e.g. dense layers
        // storing `W` as `out x in`) should call `matmul_transposed`
        // directly.
        if self.rows >= AXPY_MIN_ROWS {
            self.kernel_axpy(rhs)
        } else {
            self.kernel_dot(&rhs.transpose())
        }
    }

    /// Matrix product `self * rhs_t^T`, with the right operand supplied
    /// already transposed (`rhs_t` is `m x k` for a `n x k` left operand).
    ///
    /// Bit-identical to `self.matmul(&rhs_t.transpose())` — both entry
    /// points dispatch on the same row count, so the same kernel (and the
    /// same per-element summation tree) runs either way. For narrow left
    /// operands (per-row surrogate inference, Jacobian chains) this skips
    /// the transpose allocation that would otherwise dominate the call.
    ///
    /// # Panics
    ///
    /// Panics on an inner-dimension mismatch.
    pub fn matmul_transposed(&self, rhs_t: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs_t.cols,
            "matmul_transposed dimension mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, rhs_t.rows, rhs_t.cols
        );
        if self.rows >= AXPY_MIN_ROWS {
            self.kernel_axpy(&rhs_t.transpose())
        } else {
            self.kernel_dot(rhs_t)
        }
    }

    /// Wide-batch kernel: stream the row-major right operand and accumulate
    /// output rows vertically (axpy). No horizontal reductions, so the
    /// inner loop vectorises into pure element-wise multiply-adds — the
    /// fastest layout once there are enough left rows to amortise holding
    /// `rhs` row-major.
    fn kernel_axpy(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.kernel_axpy_into(rhs, &mut out);
        out
    }

    /// [`Matrix::kernel_axpy`] into a pre-shaped, zeroed output.
    fn kernel_axpy_into(&self, rhs: &Matrix, out: &mut Matrix) {
        debug_assert_eq!(self.cols, rhs.rows);
        debug_assert_eq!((out.rows, out.cols), (self.rows, rhs.cols));
        let (n, k, m) = (self.rows, self.cols, rhs.cols);
        for i in 0..n {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out.data[i * m..(i + 1) * m];
            for (l, &a) in a_row.iter().enumerate() {
                let rhs_row = &rhs.data[l * m..(l + 1) * m];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
    }

    /// Narrow-batch kernel over a pre-transposed right operand: every
    /// output element is a dot of two contiguous slices, and the output is
    /// tiled so a block of `rhs_t` rows stays hot in cache across a block
    /// of `self` rows. Each element is an independent dot with a fixed
    /// summation tree, so the result does not depend on the tiling.
    fn kernel_dot(&self, rhs_t: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs_t.rows);
        self.kernel_dot_into(rhs_t, &mut out);
        out
    }

    /// [`Matrix::kernel_dot`] into a pre-shaped, zeroed output.
    fn kernel_dot_into(&self, rhs_t: &Matrix, out: &mut Matrix) {
        debug_assert_eq!(self.cols, rhs_t.cols);
        debug_assert_eq!((out.rows, out.cols), (self.rows, rhs_t.rows));
        let (n, k, m) = (self.rows, self.cols, rhs_t.rows);
        if k == 0 {
            return; // empty inner dimension: every dot is 0.0
        }
        const BLOCK: usize = 32;
        for i0 in (0..n).step_by(BLOCK) {
            let i1 = (i0 + BLOCK).min(n);
            for j0 in (0..m).step_by(BLOCK) {
                let j1 = (j0 + BLOCK).min(m);
                for i in i0..i1 {
                    let a_row = &self.data[i * k..(i + 1) * k];
                    let out_row = &mut out.data[i * m..(i + 1) * m];
                    for (o, rt_row) in out_row[j0..j1]
                        .iter_mut()
                        .zip(rhs_t.data[j0 * k..j1 * k].chunks_exact(k))
                    {
                        *o = dot_unrolled(a_row, rt_row);
                    }
                }
            }
        }
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        self.transpose_into(&mut out);
        out
    }

    /// [`Matrix::transpose`] into a caller-provided buffer (resized in
    /// place), for loops that re-transpose the same weights every step.
    pub fn transpose_into(&self, out: &mut Matrix) {
        out.reset(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
    }

    /// Elementwise sum.
    ///
    /// # Panics
    ///
    /// Panics on a shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "add shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Scales every entry by `k`.
    pub fn scale(&self, k: f64) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|v| v * k).collect(),
        )
    }

    /// Elementwise `self += rhs` without allocating. Element order is
    /// left-to-right, the same as [`Matrix::add`], so an in-place
    /// accumulation chain produces the exact bits of the allocating one.
    ///
    /// # Panics
    ///
    /// Panics on a shape mismatch.
    pub fn add_in_place(&mut self, rhs: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "add shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// Scales every entry by `k` in place (allocation-free [`Matrix::scale`]).
    pub fn scale_in_place(&mut self, k: f64) {
        for v in &mut self.data {
            *v *= k;
        }
    }

    /// Resizes to `rows x cols` reusing the existing allocation, with every
    /// entry reset to zero. The workhorse of reusable scratch buffers.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// [`Matrix::matmul`] writing into a caller-provided output buffer
    /// (resized in place; its previous shape and contents are irrelevant).
    /// Bit-identical to `matmul` — the same kernels run, they just write
    /// into `out` instead of a fresh allocation.
    ///
    /// # Panics
    ///
    /// Panics on an inner-dimension mismatch.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        out.reset(self.rows, rhs.cols);
        if self.rows >= AXPY_MIN_ROWS {
            self.kernel_axpy_into(rhs, out);
        } else {
            self.kernel_dot_into(&rhs.transpose(), out);
        }
    }

    /// Solves `A x = b` for symmetric positive-definite `A = self` via
    /// Cholesky decomposition, returning `x` (same shape as `b`).
    ///
    /// # Errors
    ///
    /// Returns `None` if the matrix is not positive definite (within a small
    /// tolerance), e.g. when a ridge term is missing from a singular normal
    /// equation.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not square or `b.rows() != self.rows()`.
    pub fn cholesky_solve(&self, b: &Matrix) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "cholesky needs a square matrix");
        assert_eq!(b.rows, self.rows, "rhs row mismatch");
        let n = self.rows;
        // Decompose A = L L^T.
        let mut l = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if sum <= 1e-12 {
                        return None;
                    }
                    l[i * n + i] = sum.sqrt();
                } else {
                    l[i * n + j] = sum / l[j * n + j];
                }
            }
        }
        // Solve L y = b, then L^T x = y, column by column.
        let mut x = Matrix::zeros(n, b.cols);
        for c in 0..b.cols {
            let mut y = vec![0.0f64; n];
            for i in 0..n {
                let mut sum = b[(i, c)];
                for k in 0..i {
                    sum -= l[i * n + k] * y[k];
                }
                y[i] = sum / l[i * n + i];
            }
            for i in (0..n).rev() {
                let mut sum = y[i];
                for k in i + 1..n {
                    sum -= l[k * n + i] * x[(k, c)];
                }
                x[(i, c)] = sum / l[i * n + i];
            }
        }
        Some(x)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Left-operand row count at which `matmul` switches from the dot kernel
/// (zero-copy over a transposed RHS, best for per-row inference) to the
/// axpy kernel (vertical accumulation, best for wide training/inference
/// batches). Dispatch is purely shape-driven, so identical operands always
/// take identical paths — determinism does not depend on the threshold.
const AXPY_MIN_ROWS: usize = 16;

/// Four-accumulator dot product over equal-length slices: breaks the serial
/// add dependency so the loop keeps multiple FMAs in flight. The summation
/// tree is fixed — `(a0 + a1) + (a2 + a3) + tail` — and elementwise products
/// commute bitwise, so `dot_unrolled(u, v) == dot_unrolled(v, u)` exactly
/// (which is what keeps `(AB)^T == B^T A^T` bit-identical in `matmul`).
#[inline]
fn dot_unrolled(u: &[f64], v: &[f64]) -> f64 {
    // `chunks_exact` hands the compiler fixed-size blocks with no bounds
    // checks, so the four independent accumulators pack into SIMD lanes.
    let mut acc = [0.0f64; 4];
    let mut uc = u.chunks_exact(4);
    let mut vc = v.chunks_exact(4);
    for (a4, b4) in (&mut uc).zip(&mut vc) {
        acc[0] += a4[0] * b4[0];
        acc[1] += a4[1] * b4[1];
        acc[2] += a4[2] * b4[2];
        acc[3] += a4[3] * b4[3];
    }
    let mut tail = 0.0;
    for (a, b) in uc.remainder().iter().zip(vc.remainder()) {
        tail += a * b;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_neutral_for_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.matmul(&Matrix::identity(3)), a);
        assert_eq!(Matrix::identity(2).matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().rows(), 3);
    }

    #[test]
    fn transpose_product_rule() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![0.5, -1.0], vec![2.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![1.0, 0.0, 2.0], vec![3.0, -1.0, 1.0]]);
        // (AB)^T == B^T A^T
        assert_eq!(
            a.matmul(&b).transpose(),
            b.transpose().matmul(&a.transpose())
        );
    }

    #[test]
    fn cholesky_solves_spd_system() {
        // A = M^T M + I is SPD.
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let a = m.transpose().matmul(&m).add(&Matrix::identity(2));
        let b = Matrix::column(&[1.0, -1.0]);
        let x = a.cholesky_solve(&b).expect("SPD");
        let residual = a.matmul(&x).add(&b.scale(-1.0)).frobenius_norm();
        assert!(residual < 1e-9, "residual {residual}");
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        assert!(a.cholesky_solve(&Matrix::column(&[1.0, 1.0])).is_none());
    }

    #[test]
    fn rows_and_cols_access() {
        let mut a = Matrix::zeros(2, 3);
        a.row_mut(1).copy_from_slice(&[7.0, 8.0, 9.0]);
        assert_eq!(a.row(1), &[7.0, 8.0, 9.0]);
        assert_eq!(a.col_vec(2), vec![0.0, 9.0]);
    }

    #[test]
    fn column_constructor() {
        let c = Matrix::column(&[1.0, 2.0, 3.0]);
        assert_eq!((c.rows(), c.cols()), (3, 1));
        assert_eq!(c[(2, 0)], 3.0);
    }

    #[test]
    fn scale_and_add() {
        let a = Matrix::from_rows(&[vec![1.0, -2.0]]);
        let b = a.scale(2.0).add(&a);
        assert_eq!(b, Matrix::from_rows(&[vec![3.0, -6.0]]));
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    #[should_panic(expected = "ragged rows")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
