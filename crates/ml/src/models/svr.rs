//! Linear support-vector regression (the paper's "SVR") trained with
//! stochastic subgradient descent on the epsilon-insensitive loss.
//!
//! Features and targets are standardized internally; the model is linear in
//! the standardized space, which — as in the paper — leaves it clearly behind
//! the tree ensembles and neural networks on the strongly nonlinear stack-up
//! response surfaces. That orderings gap is itself part of the reproduction.

use crate::dataset::{Dataset, Scaler};
use crate::linalg::{dot, Matrix};
use crate::{MlError, Regressor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Linear epsilon-insensitive SVR.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinearSvr {
    epsilon: f64,
    c: f64,
    epochs: usize,
    lr: f64,
    seed: u64,
    x_scaler: Option<Scaler>,
    y_scaler: Option<Scaler>,
    /// Per-output weight vectors (with trailing bias term).
    weights: Vec<Vec<f64>>,
    n_features: usize,
}

impl LinearSvr {
    /// Creates a model with tube half-width `epsilon`, loss weight `c`,
    /// SGD `epochs`, and learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics on non-positive `c`, `epochs`, or `lr`, or negative `epsilon`.
    pub fn new(epsilon: f64, c: f64, epochs: usize, lr: f64, seed: u64) -> Self {
        assert!(epsilon >= 0.0 && c > 0.0 && epochs > 0 && lr > 0.0);
        Self {
            epsilon,
            c,
            epochs,
            lr,
            seed,
            x_scaler: None,
            y_scaler: None,
            weights: Vec::new(),
            n_features: 0,
        }
    }

    /// The paper's SVR baseline configuration.
    pub fn paper_default() -> Self {
        Self::new(0.01, 10.0, 60, 0.01, 0)
    }
}

impl Regressor for LinearSvr {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        self.n_features = data.n_features();
        let xs_scaler = Scaler::fit(&data.x);
        let ys_scaler = Scaler::fit(&data.y);
        let xs = xs_scaler.transform(&data.x);
        let ys = ys_scaler.transform(&data.y);
        let (n, d, m) = (data.len(), self.n_features, data.n_outputs());

        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut weights = vec![vec![0.0f64; d + 1]; m];
        let mut order: Vec<usize> = (0..n).collect();
        let reg = 1.0 / (self.c * n as f64);
        for epoch in 0..self.epochs {
            order.shuffle(&mut rng);
            let lr = self.lr / (1.0 + 0.05 * epoch as f64);
            for &i in &order {
                let row = xs.row(i);
                for (o, w) in weights.iter_mut().enumerate() {
                    let pred = dot(&w[..d], row) + w[d];
                    let err = pred - ys[(i, o)];
                    let g = if err > self.epsilon {
                        1.0
                    } else if err < -self.epsilon {
                        -1.0
                    } else {
                        0.0
                    };
                    for (wj, &xj) in w[..d].iter_mut().zip(row) {
                        *wj -= lr * (g * xj + reg * *wj);
                    }
                    w[d] -= lr * g;
                }
            }
        }
        if weights.iter().any(|w| w.iter().any(|v| !v.is_finite())) {
            return Err(MlError::Diverged);
        }
        self.weights = weights;
        self.x_scaler = Some(xs_scaler);
        self.y_scaler = Some(ys_scaler);
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Matrix, MlError> {
        if self.weights.is_empty() {
            return Err(MlError::NotFitted);
        }
        if x.cols() != self.n_features {
            return Err(MlError::ShapeMismatch {
                expected: self.n_features,
                got: x.cols(),
            });
        }
        let xs = self
            .x_scaler
            .as_ref()
            .ok_or(MlError::NotFitted)?
            .transform(x);
        let d = self.n_features;
        let mut out = Matrix::zeros(x.rows(), self.weights.len());
        for r in 0..x.rows() {
            let row = xs.row(r);
            for (o, w) in self.weights.iter().enumerate() {
                out[(r, o)] = dot(&w[..d], row) + w[d];
            }
        }
        Ok(self
            .y_scaler
            .as_ref()
            .ok_or(MlError::NotFitted)?
            .inverse_transform(&out))
    }

    fn name(&self) -> &'static str {
        "SVR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{mae, r2};

    fn linear_dataset() -> Dataset {
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![(i % 20) as f64, (i / 20) as f64])
            .collect();
        let ys: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] - 0.5 * r[1] + 3.0).collect();
        Dataset::new(Matrix::from_rows(&rows), Matrix::column(&ys)).unwrap()
    }

    #[test]
    fn fits_linear_relationship() {
        let d = linear_dataset();
        let mut m = LinearSvr::new(0.01, 10.0, 120, 0.02, 1);
        m.fit(&d).unwrap();
        let pred = m.predict(&d.x).unwrap();
        assert!(r2(&d.y.col_vec(0), &pred.col_vec(0)) > 0.99);
    }

    #[test]
    fn epsilon_tube_tolerates_small_errors() {
        // With a huge epsilon the model never updates: predictions stay at
        // the (de-standardized) zero, i.e. the target mean.
        let d = linear_dataset();
        let mut m = LinearSvr::new(100.0, 10.0, 30, 0.05, 1);
        m.fit(&d).unwrap();
        let pred = m.predict(&d.x).unwrap();
        let mean = d.y.col_vec(0).iter().sum::<f64>() / d.len() as f64;
        assert!(mae(&vec![mean; d.len()], &pred.col_vec(0)) < 1.0);
    }

    #[test]
    fn robust_to_outliers_vs_squared_loss_intuition() {
        // Inject a wild outlier; the epsilon-insensitive fit should stay
        // close to the clean-line fit (gradient magnitude is capped at 1).
        let mut rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 10.0]).collect();
        let mut ys: Vec<f64> = rows.iter().map(|r| r[0]).collect();
        rows.push(vec![5.0]);
        ys.push(1000.0);
        let d = Dataset::new(Matrix::from_rows(&rows), Matrix::column(&ys)).unwrap();
        let mut m = LinearSvr::new(0.01, 10.0, 200, 0.02, 3);
        m.fit(&d).unwrap();
        let clean_pred = m.predict(&Matrix::from_rows(&[vec![2.0]])).unwrap()[(0, 0)];
        assert!((clean_pred - 2.0).abs() < 2.5, "pred = {clean_pred}");
    }

    #[test]
    fn multi_output() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 10.0]).collect();
        let ys: Vec<Vec<f64>> = rows.iter().map(|r| vec![r[0], -2.0 * r[0]]).collect();
        let d = Dataset::new(Matrix::from_rows(&rows), Matrix::from_rows(&ys)).unwrap();
        let mut m = LinearSvr::new(0.01, 10.0, 150, 0.02, 5);
        m.fit(&d).unwrap();
        let pred = m.predict(&d.x).unwrap();
        assert!(r2(&d.y.col_vec(0), &pred.col_vec(0)) > 0.98);
        assert!(r2(&d.y.col_vec(1), &pred.col_vec(1)) > 0.98);
    }

    #[test]
    fn unfitted_errors() {
        let m = LinearSvr::paper_default();
        assert_eq!(m.predict(&Matrix::zeros(1, 2)), Err(MlError::NotFitted));
    }

    #[test]
    fn deterministic_per_seed() {
        let d = linear_dataset();
        let mut a = LinearSvr::new(0.01, 10.0, 20, 0.02, 7);
        let mut b = LinearSvr::new(0.01, 10.0, 20, 0.02, 7);
        a.fit(&d).unwrap();
        b.fit(&d).unwrap();
        assert_eq!(a.predict(&d.x).unwrap(), b.predict(&d.x).unwrap());
    }
}
