//! Boosted tree ensembles: first-order gradient boosting (the paper's "GBR")
//! and a second-order regularized variant in the style of XGBoost.
//!
//! Both fit shallow multi-output trees stage-wise to the residuals of a
//! squared loss. The XGBoost-style model differs in its split criterion
//! (second-order gain with L2 leaf regularization `lambda` and split penalty
//! `gamma`) and its leaf values (`-G / (H + lambda)`), which is exactly the
//! squared-loss specialization of Chen & Guestrin's objective.

use super::tree::{build_tree, Node, TreeConfig};
use crate::dataset::Dataset;
use crate::linalg::Matrix;
use crate::train::{TrainContext, BOOST_ROW_CHUNK};
use crate::{MlError, Regressor};
use isop_exec::par_map_mut;
use isop_telemetry::Counter;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Fills `out[r][c] = f(y[r][c], pred[r][c])` over fixed row chunks on up
/// to `threads` workers. Writes are disjoint (no floating-point reduction
/// happens), so any width produces the same bits. Returns the chunk count.
fn fill_gradients(
    threads: usize,
    y: &Matrix,
    pred: &Matrix,
    out: &mut Matrix,
    f: impl Fn(f64, f64) -> f64 + Sync,
) -> u64 {
    let chunk_len = BOOST_ROW_CHUNK * out.cols();
    let mut views: Vec<&mut [f64]> = out.as_mut_slice().chunks_mut(chunk_len).collect();
    let n_chunks = views.len() as u64;
    par_map_mut(threads, &mut views, |ci, chunk| {
        let start = ci * chunk_len;
        for (k, o) in chunk.iter_mut().enumerate() {
            *o = f(y.as_slice()[start + k], pred.as_slice()[start + k]);
        }
    });
    n_chunks
}

/// Applies one boosted stage in place over fixed row chunks:
/// `pred[r] += lr * predict(x[r])`. Row-disjoint writes, width-independent
/// bits. Returns the chunk count.
fn apply_stage(
    threads: usize,
    x: &Matrix,
    pred: &mut Matrix,
    lr: f64,
    predict: impl Fn(&[f64], &mut [f64]) + Sync,
) -> u64 {
    let m = pred.cols();
    let chunk_len = BOOST_ROW_CHUNK * m;
    let mut views: Vec<&mut [f64]> = pred.as_mut_slice().chunks_mut(chunk_len).collect();
    let n_chunks = views.len() as u64;
    par_map_mut(threads, &mut views, |ci, chunk| {
        let mut scratch = vec![0.0; m];
        let base_row = ci * BOOST_ROW_CHUNK;
        for (local, row) in chunk.chunks_mut(m).enumerate() {
            predict(x.row(base_row + local), &mut scratch);
            for (p, s) in row.iter_mut().zip(&scratch) {
                *p += lr * s;
            }
        }
    });
    n_chunks
}

/// First-order gradient-boosted trees (GBR).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GradientBoosting {
    n_stages: usize,
    learning_rate: f64,
    cfg: TreeConfig,
    seed: u64,
    base: Vec<f64>,
    stages: Vec<Node>,
    n_features: usize,
    n_outputs: usize,
}

impl GradientBoosting {
    /// Creates a boosted ensemble of `n_stages` trees with shrinkage
    /// `learning_rate`, per-stage tree shape `cfg`, and a deterministic
    /// `seed` for the stage trees' feature-subsampling RNG (only consumed
    /// when `cfg.max_features` is set — but distinct seeds are what let
    /// boosted members of an [`super::Ensemble`] decorrelate).
    ///
    /// # Panics
    ///
    /// Panics if `n_stages == 0` or `learning_rate` is outside `(0, 1]`.
    pub fn new(n_stages: usize, learning_rate: f64, cfg: TreeConfig, seed: u64) -> Self {
        assert!(n_stages > 0, "need at least one boosting stage");
        assert!(
            learning_rate > 0.0 && learning_rate <= 1.0,
            "learning rate must be in (0, 1]"
        );
        Self {
            n_stages,
            learning_rate,
            cfg,
            seed,
            base: Vec::new(),
            stages: Vec::new(),
            n_features: 0,
            n_outputs: 0,
        }
    }

    /// The paper's GBR baseline: 100 depth-3 trees, shrinkage 0.1.
    pub fn paper_default() -> Self {
        Self::new(
            100,
            0.1,
            TreeConfig {
                max_depth: 3,
                min_samples_split: 4,
                min_samples_leaf: 2,
                max_features: None,
            },
            0,
        )
    }

    /// Number of fitted stages.
    pub fn n_fitted_stages(&self) -> usize {
        self.stages.len()
    }
}

impl Regressor for GradientBoosting {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        self.fit_with(data, &TrainContext::serial())
    }

    fn fit_with(&mut self, data: &Dataset, ctx: &TrainContext) -> Result<(), MlError> {
        let _span = isop_telemetry::span!(ctx.telemetry, "ml.fit.gbr");
        self.n_features = data.n_features();
        self.n_outputs = data.n_outputs();
        let n = data.len();
        let m = self.n_outputs;
        let threads = ctx.parallelism.threads;

        // Base prediction: per-output mean.
        self.base = (0..m)
            .map(|c| data.y.col_vec(c).iter().sum::<f64>() / n as f64)
            .collect();

        let mut pred = Matrix::zeros(n, m);
        for r in 0..n {
            pred.row_mut(r).copy_from_slice(&self.base);
        }

        // Stages are inherently sequential (each fits the previous
        // residual), so parallelism lives *inside* a stage: the residual
        // fill and prediction update fan out over fixed row chunks, and
        // the tree's split search fans out per feature on large nodes.
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.stages = Vec::with_capacity(self.n_stages);
        let mut resid = Matrix::zeros(n, m);
        for _ in 0..self.n_stages {
            // Residuals are the negative gradient of the squared loss.
            let mut chunks = fill_gradients(threads, &data.y, &pred, &mut resid, |y, p| y - p);
            let mut idx: Vec<usize> = (0..n).collect();
            let tree = build_tree(
                &data.x,
                &resid,
                &mut idx,
                0,
                &self.cfg,
                &mut rng,
                ctx.parallelism,
            );
            chunks += apply_stage(
                threads,
                &data.x,
                &mut pred,
                self.learning_rate,
                |row, out| tree.predict_into(row, out),
            );
            ctx.telemetry.add(Counter::TrainChunks, chunks);
            self.stages.push(tree);
        }
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Matrix, MlError> {
        if self.stages.is_empty() {
            return Err(MlError::NotFitted);
        }
        if x.cols() != self.n_features {
            return Err(MlError::ShapeMismatch {
                expected: self.n_features,
                got: x.cols(),
            });
        }
        let mut out = Matrix::zeros(x.rows(), self.n_outputs);
        let mut scratch = vec![0.0; self.n_outputs];
        for r in 0..x.rows() {
            out.row_mut(r).copy_from_slice(&self.base);
            for tree in &self.stages {
                tree.predict_into(x.row(r), &mut scratch);
                for (o, s) in out.row_mut(r).iter_mut().zip(&scratch) {
                    *o += self.learning_rate * s;
                }
            }
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "GBR"
    }
}

// ---------------------------------------------------------------------------
// XGBoost-style second-order boosting.
// ---------------------------------------------------------------------------

/// One node of an XGBoost-style tree with regularized leaf weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum XgbNode {
    Leaf {
        value: Vec<f64>,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<XgbNode>,
        right: Box<XgbNode>,
    },
}

impl XgbNode {
    fn predict_into(&self, row: &[f64], out: &mut [f64]) {
        match self {
            XgbNode::Leaf { value } => out.copy_from_slice(value),
            XgbNode::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if row[*feature] <= *threshold {
                    left.predict_into(row, out)
                } else {
                    right.predict_into(row, out)
                }
            }
        }
    }
}

/// Second-order regularized boosted trees (XGBoost-style).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct XgbRegressor {
    n_stages: usize,
    learning_rate: f64,
    max_depth: usize,
    min_child_weight: f64,
    /// L2 regularization on leaf weights.
    pub lambda: f64,
    /// Minimum gain to accept a split.
    pub gamma: f64,
    base: Vec<f64>,
    stages: Vec<XgbNode>,
    n_features: usize,
    n_outputs: usize,
}

impl XgbRegressor {
    /// Creates an XGBoost-style regressor.
    ///
    /// # Panics
    ///
    /// Panics on `n_stages == 0`, a learning rate outside `(0, 1]`, or
    /// negative regularizers.
    pub fn new(
        n_stages: usize,
        learning_rate: f64,
        max_depth: usize,
        lambda: f64,
        gamma: f64,
    ) -> Self {
        assert!(n_stages > 0);
        assert!(learning_rate > 0.0 && learning_rate <= 1.0);
        assert!(lambda >= 0.0 && gamma >= 0.0);
        Self {
            n_stages,
            learning_rate,
            max_depth,
            min_child_weight: 1.0,
            lambda,
            gamma,
            base: Vec::new(),
            stages: Vec::new(),
            n_features: 0,
            n_outputs: 0,
        }
    }

    /// The paper's XGBoost baseline: 200 depth-6 trees, eta 0.1, lambda 1.
    pub fn paper_default() -> Self {
        Self::new(200, 0.1, 6, 1.0, 0.0)
    }

    /// Best split candidate for one feature: `(feature, threshold, gain)`.
    /// Sorts a fresh copy of `idx` so the result is a pure function of
    /// `(x, g, idx, f)` and can be computed on any worker (see
    /// `best_split_for_feature` in `tree.rs` for why a shared sort buffer
    /// would break that).
    #[allow(clippy::too_many_arguments)]
    fn best_xgb_split(
        &self,
        x: &Matrix,
        g: &Matrix,
        idx: &[usize],
        f: usize,
        g_total: &[f64],
        h_total: f64,
        parent_score: f64,
    ) -> Option<(usize, f64, f64)> {
        let m = g.cols();
        let score = |gs: &[f64], h: f64| -> f64 {
            gs.iter().map(|gv| gv * gv / (h + self.lambda)).sum::<f64>()
        };
        let mut order: Vec<usize> = idx.to_vec();
        order.sort_unstable_by(|&a, &b| x[(a, f)].partial_cmp(&x[(b, f)]).expect("NaN"));
        let mut best: Option<(usize, f64, f64)> = None;
        let mut g_left = vec![0.0; m];
        let mut h_left = 0.0f64;
        for pos in 0..order.len() - 1 {
            let i = order[pos];
            for (acc, v) in g_left.iter_mut().zip(g.row(i)) {
                *acc += v;
            }
            h_left += 1.0;
            let v_here = x[(i, f)];
            let v_next = x[(order[pos + 1], f)];
            if v_next <= v_here {
                continue;
            }
            let h_right = h_total - h_left;
            if h_left < self.min_child_weight || h_right < self.min_child_weight {
                continue;
            }
            let g_right: Vec<f64> = g_total.iter().zip(&g_left).map(|(t, l)| t - l).collect();
            let gain = 0.5 * (score(&g_left, h_left) + score(&g_right, h_right) - parent_score)
                - self.gamma;
            if gain > best.as_ref().map_or(0.0, |b| b.2) {
                best = Some((f, 0.5 * (v_here + v_next), gain));
            }
        }
        best
    }

    /// Builds one tree on gradients `g` (squared loss: `pred - y`; Hessian is
    /// identically 1, so `H` is the sample count).
    fn build(
        &self,
        x: &Matrix,
        g: &Matrix,
        idx: &[usize],
        depth: usize,
        par: isop_exec::Parallelism,
    ) -> XgbNode {
        let m = g.cols();
        let h_total = idx.len() as f64;
        let mut g_total = vec![0.0; m];
        for &i in idx {
            for (acc, v) in g_total.iter_mut().zip(g.row(i)) {
                *acc += v;
            }
        }
        let leaf = || XgbNode::Leaf {
            value: g_total
                .iter()
                .map(|gt| -gt / (h_total + self.lambda))
                .collect(),
        };
        if depth >= self.max_depth || h_total < 2.0 * self.min_child_weight {
            return leaf();
        }

        let score = |gs: &[f64], h: f64| -> f64 {
            gs.iter().map(|gv| gv * gv / (h + self.lambda)).sum::<f64>()
        };
        let parent_score = score(&g_total, h_total);

        // Per-feature scans fan out on big nodes only (size-based gate, so
        // the serial/parallel choice is width-independent); the fold keeps
        // the serial sweep's first-strict-maximum rule in feature order.
        let features: Vec<usize> = (0..x.cols()).collect();
        let scan_threads = if par.is_parallel()
            && idx.len() * features.len() >= crate::train::SPLIT_SCAN_MIN_WORK
        {
            par.threads
        } else {
            1
        };
        let candidates = isop_exec::par_map_indexed(scan_threads, &features, |_, &f| {
            self.best_xgb_split(x, g, idx, f, &g_total, h_total, parent_score)
        });
        let mut best: Option<(usize, f64, f64)> = None; // feature, threshold, gain
        for cand in candidates.into_iter().flatten() {
            if cand.2 > best.as_ref().map_or(0.0, |b| b.2) {
                best = Some(cand);
            }
        }

        let Some((feature, threshold, _)) = best else {
            return leaf();
        };
        let (mut li, mut ri) = (Vec::new(), Vec::new());
        for &i in idx {
            if x[(i, feature)] <= threshold {
                li.push(i);
            } else {
                ri.push(i);
            }
        }
        XgbNode::Split {
            feature,
            threshold,
            left: Box::new(self.build(x, g, &li, depth + 1, par)),
            right: Box::new(self.build(x, g, &ri, depth + 1, par)),
        }
    }
}

impl Regressor for XgbRegressor {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        self.fit_with(data, &TrainContext::serial())
    }

    fn fit_with(&mut self, data: &Dataset, ctx: &TrainContext) -> Result<(), MlError> {
        let _span = isop_telemetry::span!(ctx.telemetry, "ml.fit.xgb");
        self.n_features = data.n_features();
        self.n_outputs = data.n_outputs();
        let (n, m) = (data.len(), self.n_outputs);
        let threads = ctx.parallelism.threads;
        self.base = (0..m)
            .map(|c| data.y.col_vec(c).iter().sum::<f64>() / n as f64)
            .collect();
        let mut pred = Matrix::zeros(n, m);
        for r in 0..n {
            pred.row_mut(r).copy_from_slice(&self.base);
        }
        let idx: Vec<usize> = (0..n).collect();
        self.stages = Vec::with_capacity(self.n_stages);
        let mut grad = Matrix::zeros(n, m);
        for _ in 0..self.n_stages {
            let mut chunks = fill_gradients(threads, &data.y, &pred, &mut grad, |y, p| p - y);
            let tree = self.build(&data.x, &grad, &idx, 0, ctx.parallelism);
            chunks += apply_stage(
                threads,
                &data.x,
                &mut pred,
                self.learning_rate,
                |row, out| tree.predict_into(row, out),
            );
            ctx.telemetry.add(Counter::TrainChunks, chunks);
            self.stages.push(tree);
        }
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Matrix, MlError> {
        if self.stages.is_empty() {
            return Err(MlError::NotFitted);
        }
        if x.cols() != self.n_features {
            return Err(MlError::ShapeMismatch {
                expected: self.n_features,
                got: x.cols(),
            });
        }
        let mut out = Matrix::zeros(x.rows(), self.n_outputs);
        let mut scratch = vec![0.0; self.n_outputs];
        for r in 0..x.rows() {
            out.row_mut(r).copy_from_slice(&self.base);
            for tree in &self.stages {
                tree.predict_into(x.row(r), &mut scratch);
                for (o, s) in out.row_mut(r).iter_mut().zip(&scratch) {
                    *o += self.learning_rate * s;
                }
            }
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "XGBoost"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2;

    fn surface(n_side: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n_side * n_side)
            .map(|i| {
                let a = (i % n_side) as f64 / n_side as f64 * 2.0 - 1.0;
                let b = (i / n_side) as f64 / n_side as f64 * 2.0 - 1.0;
                vec![a, b]
            })
            .collect();
        let ys: Vec<f64> = rows
            .iter()
            .map(|r| (3.0 * r[0]).sin() + r[0] * r[1])
            .collect();
        Dataset::new(Matrix::from_rows(&rows), Matrix::column(&ys)).unwrap()
    }

    #[test]
    fn gbr_improves_with_stages() {
        let d = surface(20);
        let mut short = GradientBoosting::new(
            5,
            0.1,
            TreeConfig {
                max_depth: 3,
                ..TreeConfig::default()
            },
            0,
        );
        let mut long = GradientBoosting::new(
            100,
            0.1,
            TreeConfig {
                max_depth: 3,
                ..TreeConfig::default()
            },
            0,
        );
        short.fit(&d).unwrap();
        long.fit(&d).unwrap();
        let r_short = r2(&d.y.col_vec(0), &short.predict(&d.x).unwrap().col_vec(0));
        let r_long = r2(&d.y.col_vec(0), &long.predict(&d.x).unwrap().col_vec(0));
        assert!(r_long > r_short, "{r_long} !> {r_short}");
        assert!(r_long > 0.95);
    }

    #[test]
    fn xgb_fits_surface() {
        let d = surface(20);
        let mut m = XgbRegressor::new(80, 0.15, 4, 1.0, 0.0);
        m.fit(&d).unwrap();
        let pred = m.predict(&d.x).unwrap();
        assert!(r2(&d.y.col_vec(0), &pred.col_vec(0)) > 0.97);
    }

    #[test]
    fn xgb_beats_single_stage() {
        let d = surface(15);
        let mut one = XgbRegressor::new(1, 1.0, 4, 1.0, 0.0);
        let mut many = XgbRegressor::new(60, 0.2, 4, 1.0, 0.0);
        one.fit(&d).unwrap();
        many.fit(&d).unwrap();
        let r1 = r2(&d.y.col_vec(0), &one.predict(&d.x).unwrap().col_vec(0));
        let rn = r2(&d.y.col_vec(0), &many.predict(&d.x).unwrap().col_vec(0));
        assert!(rn > r1);
    }

    #[test]
    fn xgb_heavy_gamma_prunes_to_stump() {
        let d = surface(10);
        let mut m = XgbRegressor::new(3, 0.5, 6, 1.0, 1e9);
        m.fit(&d).unwrap();
        // With an enormous split penalty nothing splits: prediction ~= mean.
        let pred = m.predict(&d.x).unwrap();
        let mean = d.y.col_vec(0).iter().sum::<f64>() / d.len() as f64;
        // Leaves shrink slightly towards zero via lambda; allow wiggle room.
        assert!(pred.col_vec(0).iter().all(|v| (v - mean).abs() < 0.2));
    }

    #[test]
    fn gbr_multi_output() {
        let rows: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 / 100.0]).collect();
        let ys: Vec<Vec<f64>> = rows.iter().map(|r| vec![r[0] * r[0], -r[0]]).collect();
        let d = Dataset::new(Matrix::from_rows(&rows), Matrix::from_rows(&ys)).unwrap();
        let mut m = GradientBoosting::paper_default();
        m.fit(&d).unwrap();
        let pred = m.predict(&d.x).unwrap();
        assert!(r2(&d.y.col_vec(0), &pred.col_vec(0)) > 0.99);
        assert!(r2(&d.y.col_vec(1), &pred.col_vec(1)) > 0.99);
    }

    #[test]
    fn both_error_unfitted() {
        assert_eq!(
            GradientBoosting::paper_default().predict(&Matrix::zeros(1, 2)),
            Err(MlError::NotFitted)
        );
        assert_eq!(
            XgbRegressor::paper_default().predict(&Matrix::zeros(1, 2)),
            Err(MlError::NotFitted)
        );
    }

    #[test]
    fn stage_count_reported() {
        let d = surface(8);
        let mut m = GradientBoosting::new(7, 0.3, TreeConfig::default(), 0);
        m.fit(&d).unwrap();
        assert_eq!(m.n_fitted_stages(), 7);
    }
}
