//! Random forest regressor (the paper's "RFR"): bootstrap-aggregated CART
//! trees with per-split feature subsampling.

use super::tree::{build_tree, Node, TreeConfig};
use crate::dataset::Dataset;
use crate::linalg::Matrix;
use crate::train::TrainContext;
use crate::{MlError, Regressor};
use isop_exec::{par_map_indexed, Parallelism};
use isop_telemetry::Counter;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Random forest regressor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForest {
    n_trees: usize,
    cfg: TreeConfig,
    seed: u64,
    trees: Vec<Node>,
    n_features: usize,
    n_outputs: usize,
}

impl RandomForest {
    /// Creates a forest of `n_trees` trees built with `cfg` (its
    /// `max_features` controls split-time feature subsampling; `None`
    /// defaults to `ceil(d / 3)`, the regression convention).
    ///
    /// # Panics
    ///
    /// Panics if `n_trees == 0`.
    pub fn new(n_trees: usize, cfg: TreeConfig, seed: u64) -> Self {
        assert!(n_trees > 0, "forest needs at least one tree");
        Self {
            n_trees,
            cfg,
            seed,
            trees: Vec::new(),
            n_features: 0,
            n_outputs: 0,
        }
    }

    /// The paper's RFR baseline: 50 deep trees.
    pub fn paper_default() -> Self {
        Self::new(
            50,
            TreeConfig {
                max_depth: 14,
                min_samples_split: 4,
                min_samples_leaf: 2,
                max_features: None,
            },
            0,
        )
    }

    /// Number of fitted trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// `true` before fitting.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

/// Everything a worker needs to build one bootstrap tree, drawn serially
/// from the forest seed *before* the parallel section: the bootstrap
/// sample and a derived seed for the tree's own split-subsampling RNG.
struct TreePlan {
    idx: Vec<usize>,
    split_seed: u64,
}

impl Regressor for RandomForest {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        self.fit_with(data, &TrainContext::serial())
    }

    fn fit_with(&mut self, data: &Dataset, ctx: &TrainContext) -> Result<(), MlError> {
        let _span = isop_telemetry::span!(ctx.telemetry, "ml.fit.rfr");
        self.n_features = data.n_features();
        self.n_outputs = data.n_outputs();
        let mut cfg = self.cfg;
        if cfg.max_features.is_none() {
            cfg.max_features = Some(data.n_features().div_ceil(3).max(1));
        }
        // All randomness is consumed here, in tree order, on one serial
        // stream: bootstrap indices then a derived split seed per tree.
        // Each worker then reseeds its own StdRng from the plan, so tree
        // `t` is a pure function of `(data, cfg, plans[t])` and the build
        // order cannot matter.
        let mut rng = StdRng::seed_from_u64(self.seed);
        let plans: Vec<TreePlan> = (0..self.n_trees)
            .map(|_| {
                let idx: Vec<usize> = (0..data.len())
                    .map(|_| rng.gen_range(0..data.len()))
                    .collect();
                TreePlan {
                    idx,
                    split_seed: rng.gen::<u64>(),
                }
            })
            .collect();
        ctx.telemetry.add(Counter::TrainChunks, plans.len() as u64);
        // Trees are the coarse work unit, so the node-level split scan
        // inside each worker stays serial (no spawn-on-spawn).
        self.trees = par_map_indexed(ctx.parallelism.threads, &plans, |_, plan| {
            let mut idx = plan.idx.clone();
            let mut tree_rng = StdRng::seed_from_u64(plan.split_seed);
            build_tree(
                &data.x,
                &data.y,
                &mut idx,
                0,
                &cfg,
                &mut tree_rng,
                Parallelism::serial(),
            )
        });
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Matrix, MlError> {
        if self.trees.is_empty() {
            return Err(MlError::NotFitted);
        }
        if x.cols() != self.n_features {
            return Err(MlError::ShapeMismatch {
                expected: self.n_features,
                got: x.cols(),
            });
        }
        let mut out = Matrix::zeros(x.rows(), self.n_outputs);
        let mut scratch = vec![0.0; self.n_outputs];
        for r in 0..x.rows() {
            for tree in &self.trees {
                tree.predict_into(x.row(r), &mut scratch);
                for (o, v) in out.row_mut(r).iter_mut().zip(&scratch) {
                    *o += v;
                }
            }
            for o in out.row_mut(r) {
                *o /= self.trees.len() as f64;
            }
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "RFR"
    }
}

#[cfg(test)]
mod tests {
    use super::super::tree::DecisionTree;
    use super::*;
    use crate::metrics::r2;

    fn wiggly_dataset(n: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let a = (i % 25) as f64 / 12.5 - 1.0;
                let b = (i / 25) as f64 / 12.5 - 1.0;
                vec![a, b]
            })
            .collect();
        let ys: Vec<f64> = rows
            .iter()
            .map(|r| (4.0 * r[0]).sin() * (3.0 * r[1]).cos() + 0.5 * r[0] * r[1])
            .collect();
        Dataset::new(Matrix::from_rows(&rows), Matrix::column(&ys)).unwrap()
    }

    #[test]
    fn fits_nonlinear_surface() {
        let d = wiggly_dataset(625);
        let mut f = RandomForest::new(20, TreeConfig::default(), 3);
        f.fit(&d).unwrap();
        let pred = f.predict(&d.x).unwrap();
        assert!(r2(&d.y.col_vec(0), &pred.col_vec(0)) > 0.9);
    }

    #[test]
    fn generalizes_to_held_out_data() {
        let d = wiggly_dataset(625);
        let (train, test) = d.train_test_split(0.3, 11);
        let mut forest = RandomForest::paper_default();
        forest.fit(&train).unwrap();
        let rf = r2(
            &test.y.col_vec(0),
            &forest.predict(&test.x).unwrap().col_vec(0),
        );
        assert!(rf > 0.75, "forest must generalize: r2 = {rf}");
    }

    #[test]
    fn averaging_reduces_single_tree_noise() {
        // On noisy targets, the bagged average must beat one bootstrap tree.
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        let mut state = 88172645463325252u64;
        let mut noise = || {
            // xorshift for deterministic pseudo-noise
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        };
        for i in 0..600 {
            // Unique x per sample so a deep tree can memorize its noise.
            let a = i as f64 / 300.0 - 1.0;
            rows.push(vec![a]);
            ys.push(a * a + 0.4 * noise());
        }
        let d = Dataset::new(Matrix::from_rows(&rows), Matrix::column(&ys)).unwrap();
        let (train, test) = d.train_test_split(0.3, 5);
        let deep = TreeConfig {
            max_depth: 30,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: None,
        };
        let mut forest = RandomForest::new(40, deep, 1);
        forest.fit(&train).unwrap();
        let mut tree = DecisionTree::new(deep, 1);
        tree.fit(&train).unwrap();
        let rf = r2(
            &test.y.col_vec(0),
            &forest.predict(&test.x).unwrap().col_vec(0),
        );
        let dt = r2(
            &test.y.col_vec(0),
            &tree.predict(&test.x).unwrap().col_vec(0),
        );
        assert!(rf > dt, "bagging must denoise: forest {rf} vs tree {dt}");
    }

    #[test]
    fn deterministic_per_seed() {
        let d = wiggly_dataset(100);
        let mut a = RandomForest::new(5, TreeConfig::default(), 9);
        let mut b = RandomForest::new(5, TreeConfig::default(), 9);
        a.fit(&d).unwrap();
        b.fit(&d).unwrap();
        assert_eq!(a.predict(&d.x).unwrap(), b.predict(&d.x).unwrap());
    }

    #[test]
    fn unfitted_errors() {
        let f = RandomForest::paper_default();
        assert_eq!(f.predict(&Matrix::zeros(1, 2)), Err(MlError::NotFitted));
    }

    #[test]
    fn tree_count_matches() {
        let d = wiggly_dataset(64);
        let mut f = RandomForest::new(7, TreeConfig::default(), 0);
        f.fit(&d).unwrap();
        assert_eq!(f.len(), 7);
    }
}
