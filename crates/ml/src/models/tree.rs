//! CART regression trees (the paper's "DTR"), multi-output.
//!
//! Splits minimize the total sum of squared errors across all output columns
//! (the natural multi-output extension of variance reduction). The builder is
//! shared with [`RandomForest`](super::RandomForest) through [`TreeConfig`]'s
//! feature-subsampling option.

use crate::dataset::Dataset;
use crate::linalg::Matrix;
use crate::train::{TrainContext, SPLIT_SCAN_MIN_WORK};
use crate::{MlError, Regressor};
use isop_exec::{par_map_indexed, Parallelism};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Hyperparameters for tree construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to split a node.
    pub min_samples_split: usize,
    /// Minimum samples in each leaf.
    pub min_samples_leaf: usize,
    /// Number of features examined per split (`None` = all), used by random
    /// forests.
    pub max_features: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 12,
            min_samples_split: 4,
            min_samples_leaf: 2,
            max_features: None,
        }
    }
}

/// A fitted tree node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) enum Node {
    Leaf {
        value: Vec<f64>,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl Node {
    pub(crate) fn predict_into(&self, row: &[f64], out: &mut [f64]) {
        match self {
            Node::Leaf { value } => out.copy_from_slice(value),
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if row[*feature] <= *threshold {
                    left.predict_into(row, out)
                } else {
                    right.predict_into(row, out)
                }
            }
        }
    }

    fn depth(&self) -> usize {
        match self {
            Node::Leaf { .. } => 0,
            Node::Split { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }
}

fn mean_of(y: &Matrix, idx: &[usize]) -> Vec<f64> {
    let m = y.cols();
    let mut out = vec![0.0; m];
    for &i in idx {
        for (o, v) in out.iter_mut().zip(y.row(i)) {
            *o += v;
        }
    }
    for o in &mut out {
        *o /= idx.len() as f64;
    }
    out
}

/// SSE of `idx` rows around their mean, summed over outputs, computed from
/// running sums: `sse = sum(y^2) - n * mean^2`.
struct SseAccumulator {
    n: f64,
    sum: Vec<f64>,
    sum_sq: Vec<f64>,
}

impl SseAccumulator {
    fn new(m: usize) -> Self {
        Self {
            n: 0.0,
            sum: vec![0.0; m],
            sum_sq: vec![0.0; m],
        }
    }

    fn add(&mut self, row: &[f64]) {
        self.n += 1.0;
        for ((s, q), &v) in self.sum.iter_mut().zip(&mut self.sum_sq).zip(row) {
            *s += v;
            *q += v * v;
        }
    }

    fn remove(&mut self, row: &[f64]) {
        self.n -= 1.0;
        for ((s, q), &v) in self.sum.iter_mut().zip(&mut self.sum_sq).zip(row) {
            *s -= v;
            *q -= v * v;
        }
    }

    fn sse(&self) -> f64 {
        if self.n <= 0.0 {
            return 0.0;
        }
        self.sum
            .iter()
            .zip(&self.sum_sq)
            .map(|(s, q)| q - s * s / self.n)
            .sum()
    }
}

/// Best split candidate for one feature: `(feature, threshold, sse,
/// left_count)`, or `None` if no valid split exists. Always sorts a fresh
/// copy of `idx`, so the result is a pure function of `(x, y, idx, f)` —
/// the property that lets the per-feature scan run on any thread without
/// changing a bit (a reused, cross-feature sort buffer would leak the
/// previous feature's tie ordering into this one's SSE sums).
fn best_split_for_feature(
    x: &Matrix,
    y: &Matrix,
    idx: &[usize],
    f: usize,
    min_samples_leaf: usize,
) -> Option<(usize, f64, f64, usize)> {
    let mut order: Vec<usize> = idx.to_vec();
    order.sort_unstable_by(|&a, &b| x[(a, f)].partial_cmp(&x[(b, f)]).expect("NaN feature"));
    let mut best: Option<(usize, f64, f64, usize)> = None;
    let mut left = SseAccumulator::new(y.cols());
    let mut right = SseAccumulator::new(y.cols());
    for &i in order.iter() {
        right.add(y.row(i));
    }
    for pos in 0..order.len() - 1 {
        let i = order[pos];
        left.add(y.row(i));
        right.remove(y.row(i));
        let v_here = x[(i, f)];
        let v_next = x[(order[pos + 1], f)];
        if v_next <= v_here {
            continue; // tied values cannot be separated
        }
        let n_left = pos + 1;
        let n_right = order.len() - n_left;
        if n_left < min_samples_leaf || n_right < min_samples_leaf {
            continue;
        }
        let sse = left.sse() + right.sse();
        if best.as_ref().is_none_or(|b| sse < b.2) {
            best = Some((f, 0.5 * (v_here + v_next), sse, n_left));
        }
    }
    best
}

pub(crate) fn build_tree(
    x: &Matrix,
    y: &Matrix,
    idx: &mut [usize],
    depth: usize,
    cfg: &TreeConfig,
    rng: &mut StdRng,
    par: Parallelism,
) -> Node {
    if depth >= cfg.max_depth || idx.len() < cfg.min_samples_split {
        return Node::Leaf {
            value: mean_of(y, idx),
        };
    }

    let d = x.cols();
    let mut features: Vec<usize> = (0..d).collect();
    if let Some(k) = cfg.max_features {
        features.shuffle(rng);
        features.truncate(k.clamp(1, d));
    }

    // Fan the per-feature scans out only where the node is big enough for
    // spawn latency to pay off; the gate is size-based, never
    // thread-count-based, so the serial/parallel decision is identical at
    // every width. Candidates come back in feature order and the fold
    // below keeps the serial scan's first-strict-minimum tie rule, so the
    // winning split is bit-identical to a one-thread sweep.
    let scan_threads = if par.is_parallel() && idx.len() * features.len() >= SPLIT_SCAN_MIN_WORK {
        par.threads
    } else {
        1
    };
    let candidates = par_map_indexed(scan_threads, &features, |_, &f| {
        best_split_for_feature(x, y, idx, f, cfg.min_samples_leaf)
    });
    let mut best: Option<(usize, f64, f64, usize)> = None; // (feature, threshold, sse, left_count)
    for cand in candidates.into_iter().flatten() {
        if best.as_ref().is_none_or(|b| cand.2 < b.2) {
            best = Some(cand);
        }
    }

    let Some((feature, threshold, _, _)) = best else {
        return Node::Leaf {
            value: mean_of(y, idx),
        };
    };

    // Partition indices in place.
    let mut left_idx = Vec::with_capacity(idx.len());
    let mut right_idx = Vec::with_capacity(idx.len());
    for &i in idx.iter() {
        if x[(i, feature)] <= threshold {
            left_idx.push(i);
        } else {
            right_idx.push(i);
        }
    }
    debug_assert!(!left_idx.is_empty() && !right_idx.is_empty());
    let left = build_tree(x, y, &mut left_idx, depth + 1, cfg, rng, par);
    let right = build_tree(x, y, &mut right_idx, depth + 1, cfg, rng, par);
    Node::Split {
        feature,
        threshold,
        left: Box::new(left),
        right: Box::new(right),
    }
}

/// A single CART regression tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTree {
    cfg: TreeConfig,
    seed: u64,
    root: Option<Node>,
    n_features: usize,
    n_outputs: usize,
}

impl DecisionTree {
    /// Creates an unfitted tree with `cfg` and a deterministic `seed` (only
    /// used when feature subsampling is enabled).
    pub fn new(cfg: TreeConfig, seed: u64) -> Self {
        Self {
            cfg,
            seed,
            root: None,
            n_features: 0,
            n_outputs: 0,
        }
    }

    /// The paper's DTR baseline configuration.
    pub fn paper_default() -> Self {
        Self::new(TreeConfig::default(), 0)
    }

    /// Depth of the fitted tree (0 for a stump/unfitted).
    pub fn depth(&self) -> usize {
        self.root.as_ref().map_or(0, Node::depth)
    }
}

impl Regressor for DecisionTree {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        self.fit_with(data, &TrainContext::serial())
    }

    fn fit_with(&mut self, data: &Dataset, ctx: &TrainContext) -> Result<(), MlError> {
        let _span = isop_telemetry::span!(ctx.telemetry, "ml.fit.dtr");
        self.n_features = data.n_features();
        self.n_outputs = data.n_outputs();
        let mut idx: Vec<usize> = (0..data.len()).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.root = Some(build_tree(
            &data.x,
            &data.y,
            &mut idx,
            0,
            &self.cfg,
            &mut rng,
            ctx.parallelism,
        ));
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Matrix, MlError> {
        let root = self.root.as_ref().ok_or(MlError::NotFitted)?;
        if x.cols() != self.n_features {
            return Err(MlError::ShapeMismatch {
                expected: self.n_features,
                got: x.cols(),
            });
        }
        let mut out = Matrix::zeros(x.rows(), self.n_outputs);
        for r in 0..x.rows() {
            root.predict_into(x.row(r), out.row_mut(r));
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "DTR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{mae, r2};

    fn step_dataset() -> Dataset {
        // y = 1 if x0 > 0.5 else 0 — a single split suffices.
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 100.0]).collect();
        let ys: Vec<f64> = rows
            .iter()
            .map(|r| if r[0] > 0.5 { 1.0 } else { 0.0 })
            .collect();
        Dataset::new(Matrix::from_rows(&rows), Matrix::column(&ys)).unwrap()
    }

    #[test]
    fn learns_step_function_exactly() {
        let mut t = DecisionTree::paper_default();
        let d = step_dataset();
        t.fit(&d).unwrap();
        let pred = t.predict(&d.x).unwrap();
        assert!(mae(&d.y.col_vec(0), &pred.col_vec(0)) < 1e-9);
    }

    #[test]
    fn respects_max_depth() {
        let d = step_dataset();
        let mut t = DecisionTree::new(
            TreeConfig {
                max_depth: 3,
                ..TreeConfig::default()
            },
            0,
        );
        t.fit(&d).unwrap();
        assert!(t.depth() <= 3);
    }

    #[test]
    fn depth_zero_gives_mean() {
        let d = step_dataset();
        let mut t = DecisionTree::new(
            TreeConfig {
                max_depth: 0,
                ..TreeConfig::default()
            },
            0,
        );
        t.fit(&d).unwrap();
        let pred = t.predict(&d.x).unwrap();
        let mean = d.y.col_vec(0).iter().sum::<f64>() / d.len() as f64;
        assert!(pred.col_vec(0).iter().all(|v| (v - mean).abs() < 1e-9));
    }

    #[test]
    fn fits_smooth_function_approximately() {
        let rows: Vec<Vec<f64>> = (0..400)
            .map(|i| {
                let a = (i % 20) as f64 / 10.0 - 1.0;
                let b = (i / 20) as f64 / 10.0 - 1.0;
                vec![a, b]
            })
            .collect();
        let ys: Vec<f64> = rows
            .iter()
            .map(|r| (3.0 * r[0]).sin() + r[1] * r[1])
            .collect();
        let d = Dataset::new(Matrix::from_rows(&rows), Matrix::column(&ys)).unwrap();
        let mut t = DecisionTree::paper_default();
        t.fit(&d).unwrap();
        let pred = t.predict(&d.x).unwrap();
        assert!(r2(&d.y.col_vec(0), &pred.col_vec(0)) > 0.95);
    }

    #[test]
    fn multi_output_leaves() {
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let ys: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| vec![if r[0] > 25.0 { 1.0 } else { 0.0 }, r[0]])
            .collect();
        let d = Dataset::new(Matrix::from_rows(&rows), Matrix::from_rows(&ys)).unwrap();
        let mut t = DecisionTree::paper_default();
        t.fit(&d).unwrap();
        let pred = t.predict(&d.x).unwrap();
        assert_eq!(pred.cols(), 2);
        assert!(r2(&d.y.col_vec(0), &pred.col_vec(0)) > 0.9);
        assert!(r2(&d.y.col_vec(1), &pred.col_vec(1)) > 0.95);
    }

    #[test]
    fn unfitted_errors() {
        let t = DecisionTree::paper_default();
        assert_eq!(t.predict(&Matrix::zeros(1, 1)), Err(MlError::NotFitted));
    }

    #[test]
    fn min_samples_leaf_respected() {
        let d = step_dataset();
        let mut t = DecisionTree::new(
            TreeConfig {
                min_samples_leaf: 40,
                ..TreeConfig::default()
            },
            0,
        );
        t.fit(&d).unwrap();
        // With leaves of >= 40 of 100 samples, at most 1 split per path.
        assert!(t.depth() <= 2);
    }

    #[test]
    fn constant_target_single_leaf() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys = vec![7.0; 20];
        let d = Dataset::new(Matrix::from_rows(&rows), Matrix::column(&ys)).unwrap();
        let mut t = DecisionTree::paper_default();
        t.fit(&d).unwrap();
        let pred = t.predict(&d.x).unwrap();
        assert!(pred.col_vec(0).iter().all(|v| (v - 7.0).abs() < 1e-9));
    }
}
