//! Model averaging: a uniform-weight ensemble over heterogeneous
//! regressors.
//!
//! Averaging decorrelated models is the cheapest variance-reduction trick in
//! the book; in the surrogate setting an `Mlp + Cnn1d` average is often a
//! free accuracy win over either alone. The ensemble is differentiable when
//! **every** member is (the Jacobian of a mean is the mean of Jacobians), so
//! it can drive the ISOP+ gradient-descent stage.

use crate::dataset::Dataset;
use crate::linalg::Matrix;
use crate::train::TrainContext;
use crate::{Differentiable, MlError, Regressor};
use isop_exec::par_map_mut;
use isop_telemetry::Counter;

/// A uniform average of regressors.
///
/// Members are trained independently on the same data by
/// [`fit`](Regressor::fit).
pub struct Ensemble<M> {
    members: Vec<M>,
}

impl<M: Regressor> Ensemble<M> {
    /// Creates an ensemble from (unfitted or fitted) members.
    ///
    /// # Panics
    ///
    /// Panics on an empty member list.
    pub fn new(members: Vec<M>) -> Self {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        Self { members }
    }

    /// The members.
    pub fn members(&self) -> &[M] {
        &self.members
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Never empty by construction; present for API convention.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl<M: Regressor> Regressor for Ensemble<M> {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        self.fit_with(data, &TrainContext::serial())
    }

    fn fit_with(&mut self, data: &Dataset, ctx: &TrainContext) -> Result<(), MlError> {
        let _span = isop_telemetry::span!(ctx.telemetry, "ml.fit.ensemble");
        ctx.telemetry
            .add(Counter::TrainChunks, self.members.len() as u64);
        // Members are the coarse parallel unit; each trains under the same
        // serial inner context at every outer width (so member `i`'s fit is
        // a pure function of `(data, members[i])`, never of scheduling).
        let inner = ctx.nested();
        let results = par_map_mut(ctx.parallelism.threads, &mut self.members, |_, m| {
            m.fit_with(data, &inner)
        });
        // Surface the first failure in member order, as serial fitting did.
        results.into_iter().collect()
    }

    fn predict(&self, x: &Matrix) -> Result<Matrix, MlError> {
        // Accumulate into the first member's output: element order inside
        // add_in_place matches the old add() chain, so the mean's bits are
        // unchanged — only the per-member allocations are gone.
        let mut acc = self.members[0].predict(x)?;
        for m in &self.members[1..] {
            acc.add_in_place(&m.predict(x)?);
        }
        acc.scale_in_place(1.0 / self.members.len() as f64);
        Ok(acc)
    }

    fn name(&self) -> &'static str {
        "Ensemble"
    }
}

impl<M: Differentiable> Differentiable for Ensemble<M> {
    fn input_jacobian(&self, x: &[f64]) -> Result<Matrix, MlError> {
        let mut acc = self.members[0].input_jacobian(x)?;
        for m in &self.members[1..] {
            acc.add_in_place(&m.input_jacobian(x)?);
        }
        acc.scale_in_place(1.0 / self.members.len() as f64);
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2;
    use crate::models::{Mlp, MlpConfig};

    fn noisy_data(seed_rows: u64) -> Dataset {
        let mut state = seed_rows.max(1);
        let mut noise = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 1000.0 - 0.5
        };
        let rows: Vec<Vec<f64>> = (0..300).map(|i| vec![i as f64 / 150.0 - 1.0]).collect();
        let ys: Vec<f64> = rows
            .iter()
            .map(|r| (2.5 * r[0]).sin() + 0.1 * noise())
            .collect();
        Dataset::new(Matrix::from_rows(&rows), Matrix::column(&ys)).expect("valid")
    }

    fn small_mlp(seed: u64) -> Mlp {
        Mlp::new(MlpConfig {
            hidden: vec![24, 24],
            epochs: 80,
            dropout: 0.0,
            lr: 3e-3,
            seed,
            ..MlpConfig::default()
        })
    }

    #[test]
    fn ensemble_fits_and_predicts() {
        let data = noisy_data(7);
        let mut e = Ensemble::new(vec![small_mlp(1), small_mlp(2), small_mlp(3)]);
        e.fit(&data).expect("fits");
        let pred = e.predict(&data.x).expect("predicts");
        assert!(r2(&data.y.col_vec(0), &pred.col_vec(0)) > 0.9);
    }

    #[test]
    fn ensemble_prediction_is_member_mean() {
        let data = noisy_data(9);
        let mut e = Ensemble::new(vec![small_mlp(4), small_mlp(5)]);
        e.fit(&data).expect("fits");
        let pe = e.predict(&data.x).expect("ok");
        let p0 = e.members()[0].predict(&data.x).expect("ok");
        let p1 = e.members()[1].predict(&data.x).expect("ok");
        for r in 0..data.len() {
            let mean = 0.5 * (p0[(r, 0)] + p1[(r, 0)]);
            assert!((pe[(r, 0)] - mean).abs() < 1e-12);
        }
    }

    #[test]
    fn ensemble_at_least_matches_average_member_quality() {
        let data = noisy_data(11);
        let (train, test) = data.train_test_split(0.3, 1);
        let mut e = Ensemble::new(vec![small_mlp(6), small_mlp(7), small_mlp(8)]);
        e.fit(&train).expect("fits");
        let r2_ens = r2(
            &test.y.col_vec(0),
            &e.predict(&test.x).expect("ok").col_vec(0),
        );
        let mean_member_r2: f64 = e
            .members()
            .iter()
            .map(|m| {
                r2(
                    &test.y.col_vec(0),
                    &m.predict(&test.x).expect("ok").col_vec(0),
                )
            })
            .sum::<f64>()
            / e.len() as f64;
        assert!(
            r2_ens >= mean_member_r2 - 0.02,
            "ensemble {r2_ens} well below member mean {mean_member_r2}"
        );
    }

    #[test]
    fn ensemble_jacobian_is_member_mean() {
        let data = noisy_data(13);
        let mut e = Ensemble::new(vec![small_mlp(9), small_mlp(10)]);
        e.fit(&data).expect("fits");
        let x = [0.3];
        let je = e.input_jacobian(&x).expect("ok");
        let j0 = e.members()[0].input_jacobian(&x).expect("ok");
        let j1 = e.members()[1].input_jacobian(&x).expect("ok");
        assert!((je[(0, 0)] - 0.5 * (j0[(0, 0)] + j1[(0, 0)])).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_ensemble_panics() {
        let _: Ensemble<Mlp> = Ensemble::new(vec![]);
    }
}
