//! Polynomial ridge regression (the paper's "PLR").
//!
//! Expands features to all monomials up to a configurable degree (degree 2 by
//! default: bias, linear, squares, and pairwise products) and solves the
//! ridge-regularized normal equations with a Cholesky factorization.

use crate::dataset::{Dataset, Scaler};
use crate::linalg::Matrix;
use crate::{MlError, Regressor};
use serde::{Deserialize, Serialize};

/// Polynomial ridge regressor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolynomialRidge {
    degree: usize,
    lambda: f64,
    scaler: Option<Scaler>,
    /// Coefficients, `n_poly_features x n_outputs`.
    weights: Option<Matrix>,
    n_features: usize,
}

impl PolynomialRidge {
    /// Creates a model of polynomial `degree` (1 or 2) with ridge strength
    /// `lambda`.
    ///
    /// # Panics
    ///
    /// Panics unless `degree` is 1 or 2 and `lambda >= 0`.
    pub fn new(degree: usize, lambda: f64) -> Self {
        assert!((1..=2).contains(&degree), "degree must be 1 or 2");
        assert!(lambda >= 0.0, "lambda must be non-negative");
        Self {
            degree,
            lambda,
            scaler: None,
            weights: None,
            n_features: 0,
        }
    }

    /// The paper's PLR configuration: degree 2 with light regularization.
    pub fn paper_default() -> Self {
        Self::new(2, 1e-6)
    }

    fn expand_row(&self, row: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.push(1.0);
        out.extend_from_slice(row);
        if self.degree >= 2 {
            for i in 0..row.len() {
                for j in i..row.len() {
                    out.push(row[i] * row[j]);
                }
            }
        }
    }

    fn expand(&self, x: &Matrix) -> Matrix {
        let mut scratch = Vec::new();
        self.expand_row(x.row(0), &mut scratch);
        let width = scratch.len();
        let mut out = Matrix::zeros(x.rows(), width);
        for r in 0..x.rows() {
            self.expand_row(x.row(r), &mut scratch);
            out.row_mut(r).copy_from_slice(&scratch);
        }
        out
    }
}

impl Regressor for PolynomialRidge {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        self.n_features = data.n_features();
        let scaler = Scaler::fit(&data.x);
        let xs = scaler.transform(&data.x);
        self.scaler = Some(scaler);
        let phi = self.expand(&xs);
        // Normal equations with ridge: (Phi^T Phi + lambda I) W = Phi^T Y.
        let pt = phi.transpose();
        // Phi^T Phi as `pt * pt^T`: the kernel consumes the transposed
        // right operand directly, so `phi` is never re-transposed.
        let mut gram = pt.matmul_transposed(&pt);
        for i in 0..gram.rows() {
            gram[(i, i)] += self.lambda.max(1e-10);
        }
        let rhs = pt.matmul(&data.y);
        let w = gram.cholesky_solve(&rhs).ok_or(MlError::Diverged)?;
        if !w.as_slice().iter().all(|v| v.is_finite()) {
            return Err(MlError::Diverged);
        }
        self.weights = Some(w);
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Matrix, MlError> {
        let w = self.weights.as_ref().ok_or(MlError::NotFitted)?;
        if x.cols() != self.n_features {
            return Err(MlError::ShapeMismatch {
                expected: self.n_features,
                got: x.cols(),
            });
        }
        let xs = self.scaler.as_ref().ok_or(MlError::NotFitted)?.transform(x);
        Ok(self.expand(&xs).matmul(w))
    }

    fn name(&self) -> &'static str {
        "PLR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2;

    fn dataset(f: impl Fn(f64, f64) -> f64) -> Dataset {
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                let (a, b) = (i as f64 / 10.0 - 1.0, j as f64 / 10.0 - 1.0);
                rows.push(vec![a, b]);
                ys.push(f(a, b));
            }
        }
        Dataset::new(Matrix::from_rows(&rows), Matrix::column(&ys)).unwrap()
    }

    #[test]
    fn recovers_linear_function() {
        let d = dataset(|a, b| 3.0 * a - 2.0 * b + 1.0);
        let mut m = PolynomialRidge::new(1, 1e-9);
        m.fit(&d).unwrap();
        let pred = m.predict(&d.x).unwrap();
        assert!(r2(&d.y.col_vec(0), &pred.col_vec(0)) > 0.9999);
    }

    #[test]
    fn degree_two_captures_products() {
        let d = dataset(|a, b| a * b + a * a - b);
        let mut m = PolynomialRidge::new(2, 1e-9);
        m.fit(&d).unwrap();
        let pred = m.predict(&d.x).unwrap();
        assert!(r2(&d.y.col_vec(0), &pred.col_vec(0)) > 0.9999);
    }

    #[test]
    fn degree_one_cannot_capture_products() {
        let d = dataset(|a, b| a * b);
        let mut m = PolynomialRidge::new(1, 1e-9);
        m.fit(&d).unwrap();
        let pred = m.predict(&d.x).unwrap();
        assert!(r2(&d.y.col_vec(0), &pred.col_vec(0)) < 0.5);
    }

    #[test]
    fn multi_output_fit() {
        let x = Matrix::from_rows(&(0..50).map(|i| vec![i as f64 / 10.0]).collect::<Vec<_>>());
        let y = Matrix::from_rows(
            &(0..50)
                .map(|i| {
                    let v = i as f64 / 10.0;
                    vec![2.0 * v, -v + 1.0]
                })
                .collect::<Vec<_>>(),
        );
        let d = Dataset::new(x, y).unwrap();
        let mut m = PolynomialRidge::new(1, 1e-9);
        m.fit(&d).unwrap();
        let pred = m.predict(&d.x).unwrap();
        assert_eq!(pred.cols(), 2);
        assert!(r2(&d.y.col_vec(0), &pred.col_vec(0)) > 0.999);
        assert!(r2(&d.y.col_vec(1), &pred.col_vec(1)) > 0.999);
    }

    #[test]
    fn predict_before_fit_errors() {
        let m = PolynomialRidge::paper_default();
        assert_eq!(m.predict(&Matrix::zeros(1, 2)), Err(MlError::NotFitted));
    }

    #[test]
    fn wrong_width_errors() {
        let d = dataset(|a, _| a);
        let mut m = PolynomialRidge::new(1, 1e-6);
        m.fit(&d).unwrap();
        assert!(matches!(
            m.predict(&Matrix::zeros(1, 5)),
            Err(MlError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn ridge_shrinks_towards_zero() {
        let d = dataset(|a, b| 3.0 * a - 2.0 * b);
        let mut light = PolynomialRidge::new(1, 1e-9);
        let mut heavy = PolynomialRidge::new(1, 1e6);
        light.fit(&d).unwrap();
        heavy.fit(&d).unwrap();
        let pl = light.predict(&d.x).unwrap();
        let ph = heavy.predict(&d.x).unwrap();
        let norm = |m: &Matrix| m.as_slice().iter().map(|v| v.abs()).sum::<f64>();
        assert!(
            norm(&ph) < norm(&pl) * 0.1,
            "heavy ridge must shrink output"
        );
    }
}
