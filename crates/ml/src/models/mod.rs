//! Regression model zoo (the paper's Table VI line-up).
//!
//! Every model implements [`Regressor`](crate::Regressor); the neural models
//! ([`Mlp`], [`Cnn1d`]) also implement
//! [`Differentiable`](crate::Differentiable) and can therefore drive the
//! ISOP+ gradient-descent stage.

mod boosting;
mod cnn;
mod ensemble;
mod forest;
mod knn;
mod linear;
mod mlp;
mod svr;
mod tree;

pub use boosting::{GradientBoosting, XgbRegressor};
pub use cnn::{Cnn1d, Cnn1dConfig};
pub use ensemble::Ensemble;
pub use forest::RandomForest;
pub use knn::KnnRegressor;
pub use linear::PolynomialRidge;
pub use mlp::{Mlp, MlpConfig};
pub use svr::LinearSvr;
pub use tree::{DecisionTree, TreeConfig};
