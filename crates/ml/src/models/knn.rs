//! k-nearest-neighbour regressor — a reference baseline not in the paper's
//! line-up, useful for sanity-checking the others: any model that loses to
//! kNN on the stack-up response surface is not earning its complexity.
//!
//! Features are standardized internally so the Euclidean metric is
//! meaningful across the wildly different parameter scales (mils vs S/m).
//! Predictions are inverse-distance-weighted means of the `k` neighbours.

use crate::dataset::{Dataset, Scaler};
use crate::linalg::Matrix;
use crate::{MlError, Regressor};
use serde::{Deserialize, Serialize};

/// k-NN regressor with inverse-distance weighting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KnnRegressor {
    k: usize,
    scaler: Option<Scaler>,
    x_train: Option<Matrix>,
    y_train: Option<Matrix>,
}

impl KnnRegressor {
    /// Creates a regressor with `k` neighbours.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            k,
            scaler: None,
            x_train: None,
            y_train: None,
        }
    }

    /// Number of neighbours.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl Regressor for KnnRegressor {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        let scaler = Scaler::fit(&data.x);
        self.x_train = Some(scaler.transform(&data.x));
        self.y_train = Some(data.y.clone());
        self.scaler = Some(scaler);
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Matrix, MlError> {
        let (Some(xt), Some(yt), Some(scaler)) = (&self.x_train, &self.y_train, &self.scaler)
        else {
            return Err(MlError::NotFitted);
        };
        if x.cols() != xt.cols() {
            return Err(MlError::ShapeMismatch {
                expected: xt.cols(),
                got: x.cols(),
            });
        }
        let xs = scaler.transform(x);
        let k = self.k.min(xt.rows());
        let mut out = Matrix::zeros(x.rows(), yt.cols());
        // (distance^2, index) scratch reused across queries.
        let mut dists: Vec<(f64, usize)> = Vec::with_capacity(xt.rows());
        for r in 0..xs.rows() {
            let q = xs.row(r);
            dists.clear();
            for t in 0..xt.rows() {
                let d2: f64 = q
                    .iter()
                    .zip(xt.row(t))
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                dists.push((d2, t));
            }
            dists.select_nth_unstable_by(k - 1, |a, b| {
                a.0.partial_cmp(&b.0).expect("finite distances")
            });
            let mut weight_sum = 0.0;
            let mut acc = vec![0.0; yt.cols()];
            for &(d2, t) in &dists[..k] {
                let w = 1.0 / (d2.sqrt() + 1e-9);
                weight_sum += w;
                for (a, v) in acc.iter_mut().zip(yt.row(t)) {
                    *a += w * v;
                }
            }
            for (o, a) in out.row_mut(r).iter_mut().zip(acc) {
                *o = a / weight_sum;
            }
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "kNN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2;

    fn grid_dataset() -> Dataset {
        let rows: Vec<Vec<f64>> = (0..400)
            .map(|i| vec![(i % 20) as f64, (i / 20) as f64 * 1000.0])
            .collect();
        let ys: Vec<f64> = rows.iter().map(|r| r[0] + r[1] / 1000.0).collect();
        Dataset::new(Matrix::from_rows(&rows), Matrix::column(&ys)).expect("valid")
    }

    #[test]
    fn interpolates_smooth_surface() {
        let d = grid_dataset();
        let mut m = KnnRegressor::new(4);
        m.fit(&d).expect("fits");
        let pred = m.predict(&d.x).expect("predicts");
        assert!(r2(&d.y.col_vec(0), &pred.col_vec(0)) > 0.99);
    }

    #[test]
    fn k_equals_one_memorizes_training_points() {
        let d = grid_dataset();
        let mut m = KnnRegressor::new(1);
        m.fit(&d).expect("fits");
        let pred = m.predict(&d.x).expect("predicts");
        for r in 0..d.len() {
            assert!((pred[(r, 0)] - d.y[(r, 0)]).abs() < 1e-9);
        }
    }

    #[test]
    fn standardization_handles_scale_mismatch() {
        // Feature 1 is 1000x feature 0 in raw units; without standardization
        // it would dominate the metric and wreck the fit along feature 0.
        let d = grid_dataset();
        let mut m = KnnRegressor::new(3);
        m.fit(&d).expect("fits");
        // Query close to (10, 5000): the x0-neighbourhood matters.
        let pred = m
            .predict(&Matrix::from_rows(&[vec![10.2, 5000.0]]))
            .expect("ok");
        assert!((pred[(0, 0)] - 15.2).abs() < 1.0, "pred = {}", pred[(0, 0)]);
    }

    #[test]
    fn unfitted_errors() {
        let m = KnnRegressor::new(3);
        assert_eq!(m.predict(&Matrix::zeros(1, 2)), Err(MlError::NotFitted));
    }

    #[test]
    fn width_mismatch_errors() {
        let d = grid_dataset();
        let mut m = KnnRegressor::new(3);
        m.fit(&d).expect("fits");
        assert!(matches!(
            m.predict(&Matrix::zeros(1, 5)),
            Err(MlError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn k_larger_than_dataset_clamps() {
        let rows = vec![vec![0.0], vec![1.0]];
        let ys = vec![0.0, 2.0];
        let d = Dataset::new(Matrix::from_rows(&rows), Matrix::column(&ys)).expect("ok");
        let mut m = KnnRegressor::new(100);
        m.fit(&d).expect("fits");
        let pred = m.predict(&Matrix::from_rows(&[vec![0.5]])).expect("ok");
        assert!(
            (pred[(0, 0)] - 1.0).abs() < 1e-6,
            "mean of both: {}",
            pred[(0, 0)]
        );
    }
}
