//! 1D-CNN regressor — the paper's headline surrogate architecture.
//!
//! Tabular features carry no spatial order, so the network first passes them
//! through a fully connected **expansion layer** that synthesizes a long
//! feature signal, reshapes it into channels, and only then applies 1-D
//! convolutions (the "1D-CNN for tabular data" recipe the paper adopts from
//! the MoA Kaggle solution). The paper expands 15 -> 16384 features; this
//! reproduction defaults to 15 -> 128 to stay laptop-scale — the architecture
//! and every code path are identical, only widths differ (recorded in
//! DESIGN.md).
//!
//! Implements full backpropagation, including gradients with respect to the
//! input vector ([`Differentiable`]), which the ISOP+ gradient-descent stage
//! requires.

use crate::dataset::{Dataset, Scaler};
use crate::linalg::Matrix;
use crate::optim::Adam;
use crate::train::{TrainContext, CNN_CHUNK_ROWS};
use crate::{Differentiable, MlError, Regressor};
use isop_exec::{fixed_chunks, par_map_mut};
use isop_telemetry::Counter;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// 1D-CNN hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cnn1dConfig {
    /// Width of the FC expansion layer (`channels * signal_len`).
    pub expand: usize,
    /// Channels after the reshape.
    pub channels: usize,
    /// Channels of each of the two convolution layers.
    pub conv_channels: usize,
    /// Convolution kernel size (odd; implicit same-padding).
    pub kernel: usize,
    /// Width of the dense head.
    pub head: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Leaky-ReLU negative slope.
    pub leaky_slope: f64,
    /// Dropout probability on the dense head during training.
    pub dropout: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Cnn1dConfig {
    fn default() -> Self {
        Self {
            expand: 128,
            channels: 8,
            conv_channels: 16,
            kernel: 3,
            head: 48,
            epochs: 40,
            batch_size: 64,
            lr: 1.5e-3,
            leaky_slope: 0.01,
            dropout: 0.05,
            seed: 0,
        }
    }
}

#[inline]
fn leaky(v: f64, s: f64) -> f64 {
    if v >= 0.0 {
        v
    } else {
        s * v
    }
}

#[inline]
fn leaky_d(v: f64, s: f64) -> f64 {
    if v >= 0.0 {
        1.0
    } else {
        s
    }
}

/// Flat parameter tensor with shape metadata left to the call sites.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Tensor {
    data: Vec<f64>,
}

impl Tensor {
    fn init(len: usize, fan_in: usize, rng: &mut StdRng) -> Self {
        let scale = (2.0 / fan_in.max(1) as f64).sqrt();
        Self {
            data: (0..len)
                .map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * scale)
                .collect(),
        }
    }

    fn zeros(len: usize) -> Self {
        Self {
            data: vec![0.0; len],
        }
    }
}

/// Per-sample forward caches used by backprop, preallocated once and
/// refilled by [`Cnn1d::forward_sample_into`] so the per-sample hot loop
/// is allocation-free.
struct Caches {
    x: Vec<f64>,
    e_pre: Vec<f64>,
    e_act: Vec<f64>,
    z1: Vec<f64>,
    a1: Vec<f64>,
    p1: Vec<f64>,
    z2: Vec<f64>,
    a2: Vec<f64>,
    p2: Vec<f64>,
    h_pre: Vec<f64>,
    h_act: Vec<f64>,
    out: Vec<f64>,
}

impl Caches {
    /// Buffers sized for `model` (which must already know its data shape).
    fn zeros_like(model: &Cnn1d) -> Self {
        let c1 = model.cfg.conv_channels;
        let (l0, l1, l2) = (model.l0(), model.l1(), model.l2());
        Self {
            x: vec![0.0; model.n_features],
            e_pre: vec![0.0; model.cfg.expand],
            e_act: vec![0.0; model.cfg.expand],
            z1: vec![0.0; c1 * l0],
            a1: vec![0.0; c1 * l0],
            p1: vec![0.0; c1 * l1],
            z2: vec![0.0; c1 * l1],
            a2: vec![0.0; c1 * l1],
            p2: vec![0.0; c1 * l2],
            h_pre: vec![0.0; model.cfg.head],
            h_act: vec![0.0; model.cfg.head],
            out: vec![0.0; model.n_outputs],
        }
    }
}

/// Reusable backward-pass buffers; every field is (re)zeroed at its point
/// of use inside [`Cnn1d::backward_sample`].
struct BackScratch {
    d_h: Vec<f64>,
    d_p2: Vec<f64>,
    d_a2: Vec<f64>,
    d_p1: Vec<f64>,
    d_a1: Vec<f64>,
    d_e: Vec<f64>,
    d_x: Vec<f64>,
}

impl BackScratch {
    fn zeros_like(model: &Cnn1d) -> Self {
        let (c0, c1) = (model.cfg.channels, model.cfg.conv_channels);
        let (l0, l1, l2) = (model.l0(), model.l1(), model.l2());
        Self {
            d_h: vec![0.0; model.cfg.head],
            d_p2: vec![0.0; c1 * l2],
            d_a2: vec![0.0; c1 * l1],
            d_p1: vec![0.0; c1 * l1],
            d_a1: vec![0.0; c1 * l0],
            d_e: vec![0.0; c0 * l0],
            d_x: vec![0.0; model.n_features],
        }
    }
}

/// 1D-CNN regressor with the FC-expand + reshape front end.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cnn1d {
    cfg: Cnn1dConfig,
    // Parameters. Shapes:
    //   w_expand: expand x d        b_expand: expand
    //   w_conv1:  c1 x c0 x k       b_conv1:  c1
    //   w_conv2:  c1 x c1 x k       b_conv2:  c1
    //   w_head:   head x flat       b_head:   head
    //   w_out:    m x head          b_out:    m
    w_expand: Tensor,
    b_expand: Tensor,
    w_conv1: Tensor,
    b_conv1: Tensor,
    w_conv2: Tensor,
    b_conv2: Tensor,
    w_head: Tensor,
    b_head: Tensor,
    w_out: Tensor,
    b_out: Tensor,
    x_scaler: Option<Scaler>,
    y_scaler: Option<Scaler>,
    n_features: usize,
    n_outputs: usize,
    fitted: bool,
}

impl Cnn1d {
    /// Creates an unfitted model.
    ///
    /// # Panics
    ///
    /// Panics unless `expand` is divisible by `channels`, the post-pool
    /// lengths stay positive, and `kernel` is odd.
    pub fn new(cfg: Cnn1dConfig) -> Self {
        assert_eq!(
            cfg.expand % cfg.channels,
            0,
            "expand must split into channels"
        );
        assert_eq!(cfg.kernel % 2, 1, "kernel must be odd for same-padding");
        let l0 = cfg.expand / cfg.channels;
        assert!(
            l0 >= 4 && l0.is_multiple_of(4),
            "signal length must be a positive multiple of 4"
        );
        Self {
            cfg,
            w_expand: Tensor::zeros(0),
            b_expand: Tensor::zeros(0),
            w_conv1: Tensor::zeros(0),
            b_conv1: Tensor::zeros(0),
            w_conv2: Tensor::zeros(0),
            b_conv2: Tensor::zeros(0),
            w_head: Tensor::zeros(0),
            b_head: Tensor::zeros(0),
            w_out: Tensor::zeros(0),
            b_out: Tensor::zeros(0),
            x_scaler: None,
            y_scaler: None,
            n_features: 0,
            n_outputs: 0,
            fitted: false,
        }
    }

    /// The paper's 1D-CNN surrogate (laptop-scale widths).
    pub fn paper_default() -> Self {
        Self::new(Cnn1dConfig::default())
    }

    /// Training configuration.
    pub fn config(&self) -> &Cnn1dConfig {
        &self.cfg
    }

    fn l0(&self) -> usize {
        self.cfg.expand / self.cfg.channels
    }

    fn l1(&self) -> usize {
        self.l0() / 2
    }

    fn l2(&self) -> usize {
        self.l0() / 4
    }

    fn flat_len(&self) -> usize {
        self.cfg.conv_channels * self.l2()
    }

    /// `out[oc][p] = b[oc] + sum_ic sum_dk w[oc][ic][dk] * input[ic][p + dk - pad]`.
    #[allow(clippy::too_many_arguments)]
    fn conv_forward(
        w: &[f64],
        b: &[f64],
        input: &[f64],
        out: &mut [f64],
        in_ch: usize,
        out_ch: usize,
        len: usize,
        k: usize,
    ) {
        let pad = k / 2;
        for oc in 0..out_ch {
            for p in 0..len {
                let mut acc = b[oc];
                for ic in 0..in_ch {
                    let w_base = (oc * in_ch + ic) * k;
                    let in_base = ic * len;
                    for dk in 0..k {
                        let idx = p + dk;
                        if idx < pad || idx - pad >= len {
                            continue;
                        }
                        acc += w[w_base + dk] * input[in_base + idx - pad];
                    }
                }
                out[oc * len + p] = acc;
            }
        }
    }

    /// Accumulates parameter gradients and the input gradient of a conv layer.
    #[allow(clippy::too_many_arguments)]
    fn conv_backward(
        w: &[f64],
        d_out: &[f64],
        input: &[f64],
        gw: &mut [f64],
        gb: &mut [f64],
        d_in: &mut [f64],
        in_ch: usize,
        out_ch: usize,
        len: usize,
        k: usize,
    ) {
        let pad = k / 2;
        for oc in 0..out_ch {
            for p in 0..len {
                let g = d_out[oc * len + p];
                if g == 0.0 {
                    continue;
                }
                gb[oc] += g;
                for ic in 0..in_ch {
                    let w_base = (oc * in_ch + ic) * k;
                    let in_base = ic * len;
                    for dk in 0..k {
                        let idx = p + dk;
                        if idx < pad || idx - pad >= len {
                            continue;
                        }
                        gw[w_base + dk] += g * input[in_base + idx - pad];
                        d_in[in_base + idx - pad] += g * w[w_base + dk];
                    }
                }
            }
        }
    }

    fn avg_pool2(input: &[f64], ch: usize, len: usize, out: &mut [f64]) {
        let half = len / 2;
        for c in 0..ch {
            for p in 0..half {
                out[c * half + p] = 0.5 * (input[c * len + 2 * p] + input[c * len + 2 * p + 1]);
            }
        }
    }

    fn avg_unpool2(d_out: &[f64], ch: usize, len: usize, d_in: &mut [f64]) {
        let half = len / 2;
        for c in 0..ch {
            for p in 0..half {
                let g = 0.5 * d_out[c * half + p];
                d_in[c * len + 2 * p] += g;
                d_in[c * len + 2 * p + 1] += g;
            }
        }
    }

    /// Forward pass on a standardized sample, caching every intermediate
    /// into the reusable `c` (same arithmetic as the original allocating
    /// pass — `conv_forward` and the dense loops overwrite every element).
    fn forward_sample_into(&self, x: &[f64], c: &mut Caches) {
        let cfg = &self.cfg;
        let (c0, c1, k) = (cfg.channels, cfg.conv_channels, cfg.kernel);
        let (l0, l1) = (self.l0(), self.l1());
        let s = cfg.leaky_slope;

        c.x.clear();
        c.x.extend_from_slice(x);
        for (o, pre) in c.e_pre.iter_mut().enumerate() {
            let mut acc = self.b_expand.data[o];
            let base = o * self.n_features;
            for (j, xv) in x.iter().enumerate() {
                acc += self.w_expand.data[base + j] * xv;
            }
            *pre = acc;
        }
        for (a, &z) in c.e_act.iter_mut().zip(&c.e_pre) {
            *a = leaky(z, s);
        }

        Self::conv_forward(
            &self.w_conv1.data,
            &self.b_conv1.data,
            &c.e_act,
            &mut c.z1,
            c0,
            c1,
            l0,
            k,
        );
        for (a, &z) in c.a1.iter_mut().zip(&c.z1) {
            *a = leaky(z, s);
        }
        Self::avg_pool2(&c.a1, c1, l0, &mut c.p1);

        Self::conv_forward(
            &self.w_conv2.data,
            &self.b_conv2.data,
            &c.p1,
            &mut c.z2,
            c1,
            c1,
            l1,
            k,
        );
        for (a, &z) in c.a2.iter_mut().zip(&c.z2) {
            *a = leaky(z, s);
        }
        Self::avg_pool2(&c.a2, c1, l1, &mut c.p2);

        let flat = self.flat_len();
        for (o, pre) in c.h_pre.iter_mut().enumerate() {
            let mut acc = self.b_head.data[o];
            let base = o * flat;
            for (j, v) in c.p2.iter().enumerate() {
                acc += self.w_head.data[base + j] * v;
            }
            *pre = acc;
        }
        for (a, &z) in c.h_act.iter_mut().zip(&c.h_pre) {
            *a = leaky(z, s);
        }

        for (o, ov) in c.out.iter_mut().enumerate() {
            let mut acc = self.b_out.data[o];
            let base = o * cfg.head;
            for (j, v) in c.h_act.iter().enumerate() {
                acc += self.w_out.data[base + j] * v;
            }
            *ov = acc;
        }
    }

    /// Backward pass from `d_out` (gradient at the network output); adds
    /// parameter gradients into `grads` and leaves the input gradient in
    /// `scratch.d_x`. `head_mask` is the inverted-dropout mask applied to
    /// the head activation during training (`None` at inference).
    fn backward_sample(
        &self,
        caches: &Caches,
        d_out: &[f64],
        head_mask: Option<&[f64]>,
        grads: &mut CnnGrads,
        scratch: &mut BackScratch,
    ) {
        let cfg = &self.cfg;
        let (c0, c1, k) = (cfg.channels, cfg.conv_channels, cfg.kernel);
        let (l0, l1) = (self.l0(), self.l1());
        let s = cfg.leaky_slope;
        let flat = self.flat_len();

        // Output layer.
        scratch.d_h.fill(0.0);
        for (o, &g) in d_out.iter().enumerate() {
            grads.b_out[o] += g;
            let base = o * cfg.head;
            for (j, dh) in scratch.d_h.iter_mut().enumerate() {
                grads.w_out[base + j] += g * caches.h_act[j];
                *dh += g * self.w_out.data[base + j];
            }
        }
        if let Some(mask) = head_mask {
            for (dh, mk) in scratch.d_h.iter_mut().zip(mask) {
                *dh *= mk;
            }
        }
        for (j, dh) in scratch.d_h.iter_mut().enumerate() {
            *dh *= leaky_d(caches.h_pre[j], s);
        }

        // Head layer.
        scratch.d_p2.fill(0.0);
        for (o, &g) in scratch.d_h.iter().enumerate() {
            grads.b_head[o] += g;
            let base = o * flat;
            for (j, dp) in scratch.d_p2.iter_mut().enumerate() {
                grads.w_head[base + j] += g * caches.p2[j];
                *dp += g * self.w_head.data[base + j];
            }
        }

        // Pool2 + conv2.
        scratch.d_a2.fill(0.0);
        Self::avg_unpool2(&scratch.d_p2, c1, l1, &mut scratch.d_a2);
        for (j, da) in scratch.d_a2.iter_mut().enumerate() {
            *da *= leaky_d(caches.z2[j], s);
        }
        scratch.d_p1.fill(0.0);
        Self::conv_backward(
            &self.w_conv2.data,
            &scratch.d_a2,
            &caches.p1,
            &mut grads.w_conv2,
            &mut grads.b_conv2,
            &mut scratch.d_p1,
            c1,
            c1,
            l1,
            k,
        );

        // Pool1 + conv1.
        scratch.d_a1.fill(0.0);
        Self::avg_unpool2(&scratch.d_p1, c1, l0, &mut scratch.d_a1);
        for (j, da) in scratch.d_a1.iter_mut().enumerate() {
            *da *= leaky_d(caches.z1[j], s);
        }
        scratch.d_e.fill(0.0);
        Self::conv_backward(
            &self.w_conv1.data,
            &scratch.d_a1,
            &caches.e_act,
            &mut grads.w_conv1,
            &mut grads.b_conv1,
            &mut scratch.d_e,
            c0,
            c1,
            l0,
            k,
        );

        // Expansion layer.
        for (j, de) in scratch.d_e.iter_mut().enumerate() {
            *de *= leaky_d(caches.e_pre[j], s);
        }
        scratch.d_x.fill(0.0);
        for (o, &g) in scratch.d_e.iter().enumerate() {
            grads.b_expand[o] += g;
            let base = o * self.n_features;
            for (j, dx) in scratch.d_x.iter_mut().enumerate() {
                grads.w_expand[base + j] += g * caches.x[j];
                *dx += g * self.w_expand.data[base + j];
            }
        }
    }
}

/// Gradient accumulator mirroring the parameter tensors.
struct CnnGrads {
    w_expand: Vec<f64>,
    b_expand: Vec<f64>,
    w_conv1: Vec<f64>,
    b_conv1: Vec<f64>,
    w_conv2: Vec<f64>,
    b_conv2: Vec<f64>,
    w_head: Vec<f64>,
    b_head: Vec<f64>,
    w_out: Vec<f64>,
    b_out: Vec<f64>,
}

impl CnnGrads {
    fn zeros_like(model: &Cnn1d) -> Self {
        Self {
            w_expand: vec![0.0; model.w_expand.data.len()],
            b_expand: vec![0.0; model.b_expand.data.len()],
            w_conv1: vec![0.0; model.w_conv1.data.len()],
            b_conv1: vec![0.0; model.b_conv1.data.len()],
            w_conv2: vec![0.0; model.w_conv2.data.len()],
            b_conv2: vec![0.0; model.b_conv2.data.len()],
            w_head: vec![0.0; model.w_head.data.len()],
            b_head: vec![0.0; model.b_head.data.len()],
            w_out: vec![0.0; model.w_out.data.len()],
            b_out: vec![0.0; model.b_out.data.len()],
        }
    }

    /// The tensors in parameter order (matching the optimizer order).
    fn fields(&self) -> [&Vec<f64>; 10] {
        [
            &self.w_expand,
            &self.b_expand,
            &self.w_conv1,
            &self.b_conv1,
            &self.w_conv2,
            &self.b_conv2,
            &self.w_head,
            &self.b_head,
            &self.w_out,
            &self.b_out,
        ]
    }

    fn fields_mut(&mut self) -> [&mut Vec<f64>; 10] {
        [
            &mut self.w_expand,
            &mut self.b_expand,
            &mut self.w_conv1,
            &mut self.b_conv1,
            &mut self.w_conv2,
            &mut self.b_conv2,
            &mut self.w_head,
            &mut self.b_head,
            &mut self.w_out,
            &mut self.b_out,
        ]
    }

    fn zero_fill(&mut self) {
        for t in self.fields_mut() {
            t.fill(0.0);
        }
    }

    /// Element-wise accumulation; tensors are summed left-to-right by the
    /// caller, which keeps the chunk-order reduction a fixed association.
    fn add_in_place(&mut self, rhs: &CnnGrads) {
        for (t, r) in self.fields_mut().into_iter().zip(rhs.fields()) {
            for (a, b) in t.iter_mut().zip(r) {
                *a += b;
            }
        }
    }

    fn scale(&mut self, k: f64) {
        for t in self.fields_mut() {
            for v in t.iter_mut() {
                *v *= k;
            }
        }
    }
}

/// Reusable workspace for one gradient chunk of the CNN's data-parallel
/// backprop: forward caches, backward scratch, and the chunk's gradient
/// partial — one slot per chunk, recycled every minibatch.
struct CnnChunkSlot {
    /// Sample range `[r0, r1)` into the current minibatch, set before
    /// dispatch.
    r0: usize,
    r1: usize,
    caches: Caches,
    scratch: BackScratch,
    d_out: Vec<f64>,
    grads: CnnGrads,
}

impl CnnChunkSlot {
    fn zeros_like(model: &Cnn1d) -> Self {
        Self {
            r0: 0,
            r1: 0,
            caches: Caches::zeros_like(model),
            scratch: BackScratch::zeros_like(model),
            d_out: vec![0.0; model.n_outputs],
            grads: CnnGrads::zeros_like(model),
        }
    }
}

impl Regressor for Cnn1d {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        self.fit_with(data, &TrainContext::serial())
    }

    fn fit_with(&mut self, data: &Dataset, ctx: &TrainContext) -> Result<(), MlError> {
        let _span = isop_telemetry::span!(ctx.telemetry, "ml.fit.cnn");
        self.n_features = data.n_features();
        self.n_outputs = data.n_outputs();
        let cfg = self.cfg.clone();
        let (c0, c1, k) = (cfg.channels, cfg.conv_channels, cfg.kernel);
        let flat = self.flat_len();

        let mut rng = StdRng::seed_from_u64(cfg.seed);
        self.w_expand = Tensor::init(cfg.expand * self.n_features, self.n_features, &mut rng);
        self.b_expand = Tensor::zeros(cfg.expand);
        self.w_conv1 = Tensor::init(c1 * c0 * k, c0 * k, &mut rng);
        self.b_conv1 = Tensor::zeros(c1);
        self.w_conv2 = Tensor::init(c1 * c1 * k, c1 * k, &mut rng);
        self.b_conv2 = Tensor::zeros(c1);
        self.w_head = Tensor::init(cfg.head * flat, flat, &mut rng);
        self.b_head = Tensor::zeros(cfg.head);
        self.w_out = Tensor::init(self.n_outputs * cfg.head, cfg.head, &mut rng);
        self.b_out = Tensor::zeros(self.n_outputs);

        let x_scaler = Scaler::fit(&data.x);
        let y_scaler = Scaler::fit(&data.y);
        let xs = x_scaler.transform(&data.x);
        let ys = y_scaler.transform(&data.y);

        let mut opts: Vec<Adam> = [
            self.w_expand.data.len(),
            self.b_expand.data.len(),
            self.w_conv1.data.len(),
            self.b_conv1.data.len(),
            self.w_conv2.data.len(),
            self.b_conv2.data.len(),
            self.w_head.data.len(),
            self.b_head.data.len(),
            self.w_out.data.len(),
            self.b_out.data.len(),
        ]
        .iter()
        .map(|&n| Adam::new(cfg.lr, n))
        .collect();

        let n = data.len();
        let bs = cfg.batch_size.clamp(1, n);
        let keep = 1.0 - cfg.dropout;
        let has_dropout = cfg.dropout > 0.0;
        let mut order: Vec<usize> = (0..n).collect();
        let threads = ctx.parallelism.threads;

        // Reusable training state: one workspace slot per gradient chunk,
        // the reduced per-batch gradient, and the pre-drawn head dropout
        // masks for the whole minibatch.
        let mut slots: Vec<CnnChunkSlot> = Vec::new();
        let mut totals = CnnGrads::zeros_like(self);
        let mut head_masks = Matrix::zeros(0, 0);

        for epoch in 0..cfg.epochs {
            // Step decay mirroring the MLP schedule.
            let decay = if epoch * 4 >= cfg.epochs * 3 {
                0.25
            } else if epoch * 2 >= cfg.epochs {
                0.5
            } else {
                1.0
            };
            for opt in &mut opts {
                opt.set_learning_rate(cfg.lr * decay);
            }
            order.shuffle(&mut rng);
            for batch in order.chunks(bs) {
                // All randomness is drawn serially before the parallel
                // section: one inverted-dropout head mask per sample, in
                // sample order — the same stream the serial trainer drew.
                if has_dropout {
                    head_masks.reset(batch.len(), cfg.head);
                    for v in head_masks.as_mut_slice() {
                        *v = if rng.gen::<f64>() < keep {
                            1.0 / keep
                        } else {
                            0.0
                        };
                    }
                }

                // Chunk boundaries depend only on the batch length, never
                // the thread count, so the chunk-order reduction below
                // associates identically at any parallelism width.
                let ranges = fixed_chunks(batch.len(), CNN_CHUNK_ROWS);
                ctx.telemetry.add(Counter::TrainChunks, ranges.len() as u64);
                while slots.len() < ranges.len() {
                    slots.push(CnnChunkSlot::zeros_like(self));
                }
                for (slot, &(r0, r1)) in slots.iter_mut().zip(&ranges) {
                    slot.r0 = r0;
                    slot.r1 = r1;
                }

                let model: &Cnn1d = self;
                par_map_mut(threads, &mut slots[..ranges.len()], |_, slot| {
                    slot.grads.zero_fill();
                    for (off, &i) in batch[slot.r0..slot.r1].iter().enumerate() {
                        model.forward_sample_into(xs.row(i), &mut slot.caches);
                        // Inverted dropout on the head activation.
                        let mask: Option<&[f64]> = if has_dropout {
                            let m = head_masks.row(slot.r0 + off);
                            for (h, mk) in slot.caches.h_act.iter_mut().zip(m) {
                                *h *= mk;
                            }
                            // Recompute output with the dropped activations.
                            for (o, ov) in slot.caches.out.iter_mut().enumerate() {
                                let mut acc = model.b_out.data[o];
                                let base = o * model.cfg.head;
                                for (j, v) in slot.caches.h_act.iter().enumerate() {
                                    acc += model.w_out.data[base + j] * v;
                                }
                                *ov = acc;
                            }
                            Some(m)
                        } else {
                            None
                        };
                        for ((d, p), t) in
                            slot.d_out.iter_mut().zip(&slot.caches.out).zip(ys.row(i))
                        {
                            *d = 2.0 * (p - t);
                        }
                        model.backward_sample(
                            &slot.caches,
                            &slot.d_out,
                            mask,
                            &mut slot.grads,
                            &mut slot.scratch,
                        );
                    }
                });

                // Reduce chunk partials in chunk order (fixed association),
                // then take the optimizer steps serially.
                totals.zero_fill();
                for slot in &slots[..ranges.len()] {
                    totals.add_in_place(&slot.grads);
                }
                totals.scale(1.0 / batch.len() as f64);
                let mut it = opts.iter_mut();
                it.next()
                    .unwrap()
                    .step(&mut self.w_expand.data, &totals.w_expand);
                it.next()
                    .unwrap()
                    .step(&mut self.b_expand.data, &totals.b_expand);
                it.next()
                    .unwrap()
                    .step(&mut self.w_conv1.data, &totals.w_conv1);
                it.next()
                    .unwrap()
                    .step(&mut self.b_conv1.data, &totals.b_conv1);
                it.next()
                    .unwrap()
                    .step(&mut self.w_conv2.data, &totals.w_conv2);
                it.next()
                    .unwrap()
                    .step(&mut self.b_conv2.data, &totals.b_conv2);
                it.next()
                    .unwrap()
                    .step(&mut self.w_head.data, &totals.w_head);
                it.next()
                    .unwrap()
                    .step(&mut self.b_head.data, &totals.b_head);
                it.next().unwrap().step(&mut self.w_out.data, &totals.w_out);
                it.next().unwrap().step(&mut self.b_out.data, &totals.b_out);
            }
        }

        if !self.w_expand.data.iter().all(|v| v.is_finite()) {
            return Err(MlError::Diverged);
        }
        self.x_scaler = Some(x_scaler);
        self.y_scaler = Some(y_scaler);
        self.fitted = true;
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Matrix, MlError> {
        if !self.fitted {
            return Err(MlError::NotFitted);
        }
        if x.cols() != self.n_features {
            return Err(MlError::ShapeMismatch {
                expected: self.n_features,
                got: x.cols(),
            });
        }
        let xs = self
            .x_scaler
            .as_ref()
            .ok_or(MlError::NotFitted)?
            .transform(x);
        let mut out = Matrix::zeros(x.rows(), self.n_outputs);
        let mut caches = Caches::zeros_like(self);
        for r in 0..x.rows() {
            self.forward_sample_into(xs.row(r), &mut caches);
            out.row_mut(r).copy_from_slice(&caches.out);
        }
        Ok(self
            .y_scaler
            .as_ref()
            .ok_or(MlError::NotFitted)?
            .inverse_transform(&out))
    }

    fn name(&self) -> &'static str {
        "1D-CNN"
    }
}

impl Differentiable for Cnn1d {
    fn input_jacobian(&self, x: &[f64]) -> Result<Matrix, MlError> {
        if !self.fitted {
            return Err(MlError::NotFitted);
        }
        if x.len() != self.n_features {
            return Err(MlError::ShapeMismatch {
                expected: self.n_features,
                got: x.len(),
            });
        }
        let x_scaler = self.x_scaler.as_ref().ok_or(MlError::NotFitted)?;
        let y_scaler = self.y_scaler.as_ref().ok_or(MlError::NotFitted)?;
        let mut row = x.to_vec();
        x_scaler.transform_row(&mut row);
        let mut caches = Caches::zeros_like(self);
        self.forward_sample_into(&row, &mut caches);

        let mut jac = Matrix::zeros(self.n_outputs, self.n_features);
        let mut grads = CnnGrads::zeros_like(self);
        let mut scratch = BackScratch::zeros_like(self);
        let mut d_out = vec![0.0; self.n_outputs];
        for o in 0..self.n_outputs {
            d_out.fill(0.0);
            d_out[o] = 1.0;
            self.backward_sample(&caches, &d_out, None, &mut grads, &mut scratch);
            let sy = y_scaler.stds()[o];
            for (c, g) in scratch.d_x.iter().enumerate() {
                jac[(o, c)] = g * sy / x_scaler.stds()[c];
            }
        }
        Ok(jac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2;

    fn tiny_cfg() -> Cnn1dConfig {
        Cnn1dConfig {
            expand: 32,
            channels: 4,
            conv_channels: 8,
            kernel: 3,
            head: 16,
            epochs: 150,
            batch_size: 32,
            lr: 3e-3,
            leaky_slope: 0.01,
            dropout: 0.0,
            seed: 2,
        }
    }

    fn curve_dataset(n: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                vec![
                    i as f64 / n as f64 * 2.0 - 1.0,
                    ((i * 7) % n) as f64 / n as f64,
                ]
            })
            .collect();
        let ys: Vec<f64> = rows
            .iter()
            .map(|r| (3.0 * r[0]).sin() + r[1] * r[1])
            .collect();
        Dataset::new(Matrix::from_rows(&rows), Matrix::column(&ys)).unwrap()
    }

    #[test]
    fn fits_nonlinear_curve() {
        let d = curve_dataset(200);
        let mut m = Cnn1d::new(tiny_cfg());
        m.fit(&d).unwrap();
        let pred = m.predict(&d.x).unwrap();
        let score = r2(&d.y.col_vec(0), &pred.col_vec(0));
        assert!(score > 0.9, "r2 = {score}");
    }

    #[test]
    fn input_jacobian_matches_finite_differences() {
        let d = curve_dataset(150);
        let mut m = Cnn1d::new(tiny_cfg());
        m.fit(&d).unwrap();
        let x0 = [0.3, 0.5];
        let jac = m.input_jacobian(&x0).unwrap();
        for c in 0..2 {
            let h = 1e-5;
            let mut hi = x0.to_vec();
            let mut lo = x0.to_vec();
            hi[c] += h;
            lo[c] -= h;
            let ph = m.predict(&Matrix::from_rows(&[hi])).unwrap()[(0, 0)];
            let pl = m.predict(&Matrix::from_rows(&[lo])).unwrap()[(0, 0)];
            let fd = (ph - pl) / (2.0 * h);
            assert!(
                (jac[(0, c)] - fd).abs() < 1e-4 * (1.0 + fd.abs()),
                "dim {c}: analytic {} vs fd {fd}",
                jac[(0, c)]
            );
        }
    }

    #[test]
    fn multi_output_training() {
        let rows: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 / 100.0 - 1.0]).collect();
        let ys: Vec<Vec<f64>> = rows.iter().map(|r| vec![r[0] * r[0], -r[0]]).collect();
        let d = Dataset::new(Matrix::from_rows(&rows), Matrix::from_rows(&ys)).unwrap();
        let mut m = Cnn1d::new(tiny_cfg());
        m.fit(&d).unwrap();
        let pred = m.predict(&d.x).unwrap();
        assert!(r2(&d.y.col_vec(0), &pred.col_vec(0)) > 0.9);
        assert!(r2(&d.y.col_vec(1), &pred.col_vec(1)) > 0.95);
    }

    #[test]
    fn unfitted_errors() {
        let m = Cnn1d::paper_default();
        assert_eq!(m.predict(&Matrix::zeros(1, 2)), Err(MlError::NotFitted));
        assert_eq!(m.input_jacobian(&[0.0, 0.0]), Err(MlError::NotFitted));
    }

    #[test]
    #[should_panic(expected = "expand must split into channels")]
    fn bad_geometry_panics() {
        let _ = Cnn1d::new(Cnn1dConfig {
            expand: 30,
            channels: 4,
            ..Cnn1dConfig::default()
        });
    }

    #[test]
    fn deterministic_per_seed() {
        let d = curve_dataset(60);
        let mut cfg = tiny_cfg();
        cfg.epochs = 5;
        let mut a = Cnn1d::new(cfg.clone());
        let mut b = Cnn1d::new(cfg);
        a.fit(&d).unwrap();
        b.fit(&d).unwrap();
        assert_eq!(a.predict(&d.x).unwrap(), b.predict(&d.x).unwrap());
    }

    #[test]
    fn dropout_variant_trains() {
        let d = curve_dataset(150);
        let mut cfg = tiny_cfg();
        cfg.dropout = 0.1;
        cfg.epochs = 200;
        let mut m = Cnn1d::new(cfg);
        m.fit(&d).unwrap();
        let pred = m.predict(&d.x).unwrap();
        assert!(r2(&d.y.col_vec(0), &pred.col_vec(0)) > 0.8);
    }
}
