//! Multilayer perceptron regressor (the paper's "MLPR") with leaky-ReLU
//! activations, inverted dropout, Adam training, and **input gradients**.
//!
//! The input Jacobian is what lets the ISOP+ local-exploration stage run
//! gradient descent on *design parameters* through the surrogate.

use crate::dataset::{Dataset, Scaler};
use crate::linalg::Matrix;
use crate::optim::Adam;
use crate::train::{TrainContext, MLP_CHUNK_ROWS};
use crate::{Differentiable, MlError, Regressor};
use isop_exec::{fixed_chunks, par_map_mut};
use isop_telemetry::Counter;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// MLP hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Hidden layer widths, e.g. `[128, 128, 64]`.
    pub hidden: Vec<usize>,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Negative-side slope of the leaky ReLU.
    pub leaky_slope: f64,
    /// Dropout probability on hidden activations (0 disables).
    pub dropout: f64,
    /// RNG seed for init, shuffling, and dropout masks.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self {
            hidden: vec![128, 128, 64],
            epochs: 40,
            batch_size: 64,
            lr: 1e-3,
            leaky_slope: 0.01,
            dropout: 0.05,
            seed: 0,
        }
    }
}

/// One dense layer: `out = a_in * w^T + b`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Dense {
    /// `n_out x n_in`.
    w: Matrix,
    b: Vec<f64>,
}

impl Dense {
    fn init(n_in: usize, n_out: usize, rng: &mut StdRng) -> Self {
        // He-style initialization suited to ReLU-family activations.
        let scale = (2.0 / n_in as f64).sqrt();
        let mut w = Matrix::zeros(n_out, n_in);
        for v in w.as_mut_slice() {
            *v = (rng.gen::<f64>() * 2.0 - 1.0) * scale;
        }
        Self {
            w,
            b: vec![0.0; n_out],
        }
    }

    /// `a (n x in) -> z (n x out)`.
    fn forward(&self, a: &Matrix) -> Matrix {
        // `w` is stored `out x in`, i.e. already the transposed right
        // operand — feed it to the kernel directly instead of paying a
        // transpose allocation per layer per call.
        let mut z = a.matmul_transposed(&self.w);
        for r in 0..z.rows() {
            for (v, b) in z.row_mut(r).iter_mut().zip(&self.b) {
                *v += b;
            }
        }
        z
    }
}

/// Gradient accumulator for one dense layer: `gw` is `out x in` like the
/// weights, `gb` is per-output.
struct LayerGrads {
    gw: Matrix,
    gb: Vec<f64>,
}

impl LayerGrads {
    fn empty() -> Self {
        Self {
            gw: Matrix::zeros(0, 0),
            gb: Vec::new(),
        }
    }

    fn reset(&mut self, n_out: usize, n_in: usize) {
        self.gw.reset(n_out, n_in);
        self.gb.clear();
        self.gb.resize(n_out, 0.0);
    }
}

/// Reusable workspace for one gradient chunk of the data-parallel backprop:
/// one slot per chunk (not per worker — the chunk's partial gradients stay
/// in the slot until the in-order reduction), allocated once per `fit` and
/// recycled every minibatch so the training loop is allocation-free.
struct ChunkSlot {
    /// Row range `[r0, r1)` into the current minibatch, set before dispatch.
    r0: usize,
    r1: usize,
    /// Gathered targets for this chunk's rows.
    yb: Matrix,
    /// `a[l]` = input to layer `l` (post-activation/dropout of `l - 1`,
    /// `a[0]` = the gathered input rows).
    a: Vec<Matrix>,
    /// `z[l]` = pre-activation output of layer `l` (bias included).
    z: Vec<Matrix>,
    /// Loss gradient flowing backwards, plus its swap partner.
    delta: Matrix,
    next_delta: Matrix,
    /// Per-layer gradient partials for this chunk.
    grads: Vec<LayerGrads>,
}

impl ChunkSlot {
    fn new(n_layers: usize) -> Self {
        Self {
            r0: 0,
            r1: 0,
            yb: Matrix::zeros(0, 0),
            a: (0..n_layers).map(|_| Matrix::zeros(0, 0)).collect(),
            z: (0..n_layers).map(|_| Matrix::zeros(0, 0)).collect(),
            delta: Matrix::zeros(0, 0),
            next_delta: Matrix::zeros(0, 0),
            grads: (0..n_layers).map(|_| LayerGrads::empty()).collect(),
        }
    }
}

#[inline]
fn leaky(v: f64, slope: f64) -> f64 {
    if v >= 0.0 {
        v
    } else {
        slope * v
    }
}

#[inline]
fn leaky_deriv(v: f64, slope: f64) -> f64 {
    if v >= 0.0 {
        1.0
    } else {
        slope
    }
}

/// Multilayer perceptron regressor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    cfg: MlpConfig,
    layers: Vec<Dense>,
    x_scaler: Option<Scaler>,
    y_scaler: Option<Scaler>,
    n_features: usize,
    n_outputs: usize,
}

impl Mlp {
    /// Creates an unfitted MLP.
    pub fn new(cfg: MlpConfig) -> Self {
        Self {
            cfg,
            layers: Vec::new(),
            x_scaler: None,
            y_scaler: None,
            n_features: 0,
            n_outputs: 0,
        }
    }

    /// The paper's MLPR surrogate configuration.
    pub fn paper_default() -> Self {
        Self::new(MlpConfig::default())
    }

    /// Training configuration.
    pub fn config(&self) -> &MlpConfig {
        &self.cfg
    }

    /// Forward pass in the standardized space, returning pre-activations per
    /// layer and the final output. `zs[l]` is the pre-activation of layer `l`.
    fn forward_all(&self, x: &Matrix) -> (Vec<Matrix>, Matrix) {
        let mut zs = Vec::with_capacity(self.layers.len());
        let mut a = x.clone();
        for (l, layer) in self.layers.iter().enumerate() {
            let z = layer.forward(&a);
            if l + 1 < self.layers.len() {
                let mut act = z.clone();
                for v in act.as_mut_slice() {
                    *v = leaky(*v, self.cfg.leaky_slope);
                }
                zs.push(z);
                a = act;
            } else {
                zs.push(z.clone());
                a = z;
            }
        }
        (zs, a)
    }
}

impl Regressor for Mlp {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        self.fit_with(data, &TrainContext::serial())
    }

    fn fit_with(&mut self, data: &Dataset, ctx: &TrainContext) -> Result<(), MlError> {
        let _span = isop_telemetry::span!(ctx.telemetry, "ml.fit.mlp");
        self.n_features = data.n_features();
        self.n_outputs = data.n_outputs();
        let x_scaler = Scaler::fit(&data.x);
        let y_scaler = Scaler::fit(&data.y);
        let xs = x_scaler.transform(&data.x);
        let ys = y_scaler.transform(&data.y);

        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let mut dims = vec![self.n_features];
        dims.extend_from_slice(&self.cfg.hidden);
        dims.push(self.n_outputs);
        self.layers = dims
            .windows(2)
            .map(|w| Dense::init(w[0], w[1], &mut rng))
            .collect();
        let n_layers = self.layers.len();

        // One Adam per parameter tensor.
        let mut opts: Vec<(Adam, Adam)> = self
            .layers
            .iter()
            .map(|l| {
                (
                    Adam::new(self.cfg.lr, l.w.rows() * l.w.cols()),
                    Adam::new(self.cfg.lr, l.b.len()),
                )
            })
            .collect();

        let n = data.len();
        let bs = self.cfg.batch_size.clamp(1, n);
        let mut order: Vec<usize> = (0..n).collect();
        let keep = 1.0 - self.cfg.dropout;
        let has_dropout = self.cfg.dropout > 0.0;
        let slope = self.cfg.leaky_slope;
        let threads = ctx.parallelism.threads;

        // Reusable training state: gradient-chunk slots, per-layer gradient
        // totals, batch-wide dropout masks, and per-batch weight transposes
        // (`w^T` once per layer per step instead of once per chunk).
        let mut slots: Vec<ChunkSlot> = Vec::new();
        let mut totals: Vec<LayerGrads> = (0..n_layers).map(|_| LayerGrads::empty()).collect();
        let mut masks: Vec<Matrix> = (1..n_layers).map(|_| Matrix::zeros(0, 0)).collect();
        let mut w_t: Vec<Matrix> = (0..n_layers).map(|_| Matrix::zeros(0, 0)).collect();

        for epoch in 0..self.cfg.epochs {
            // Step decay: halve the learning rate at 50% and again at 75%
            // of training, a standard schedule that lets Adam settle.
            let decay = if epoch * 4 >= self.cfg.epochs * 3 {
                0.25
            } else if epoch * 2 >= self.cfg.epochs {
                0.5
            } else {
                1.0
            };
            for (w_opt, b_opt) in &mut opts {
                w_opt.set_learning_rate(self.cfg.lr * decay);
                b_opt.set_learning_rate(self.cfg.lr * decay);
            }
            order.shuffle(&mut rng);
            for batch in order.chunks(bs) {
                // All randomness is drawn serially before the parallel
                // section: dropout masks for the whole minibatch, in
                // (layer, element) order — the same stream the serial
                // trainer consumed.
                if has_dropout {
                    for (l, mask) in masks.iter_mut().enumerate() {
                        mask.reset(batch.len(), dims[l + 1]);
                        for v in mask.as_mut_slice() {
                            *v = if rng.gen::<f64>() < keep {
                                1.0 / keep
                            } else {
                                0.0
                            };
                        }
                    }
                }
                for (layer, t) in self.layers.iter().zip(&mut w_t) {
                    layer.w.transpose_into(t);
                }

                // Chunk boundaries depend only on the batch length, never
                // the thread count, so the chunk-order gradient reduction
                // below associates identically at every width.
                let ranges = fixed_chunks(batch.len(), MLP_CHUNK_ROWS);
                ctx.telemetry.add(Counter::TrainChunks, ranges.len() as u64);
                while slots.len() < ranges.len() {
                    slots.push(ChunkSlot::new(n_layers));
                }
                for (slot, &(r0, r1)) in slots.iter_mut().zip(&ranges) {
                    slot.r0 = r0;
                    slot.r1 = r1;
                }

                let layers = &self.layers;
                let scale = 2.0 / batch.len() as f64;
                par_map_mut(threads, &mut slots[..ranges.len()], |_, slot| {
                    let rows = slot.r1 - slot.r0;
                    // Gather this chunk's input and target rows.
                    slot.a[0].reset(rows, dims[0]);
                    slot.yb.reset(rows, *dims.last().expect("nonempty dims"));
                    for r in 0..rows {
                        let i = batch[slot.r0 + r];
                        slot.a[0].row_mut(r).copy_from_slice(xs.row(i));
                        slot.yb.row_mut(r).copy_from_slice(ys.row(i));
                    }

                    // Forward, caching pre-activations `z` and layer inputs
                    // `a`, applying the pre-drawn inverted-dropout masks.
                    for l in 0..n_layers {
                        let (done, rest) = slot.a.split_at_mut(l + 1);
                        done[l].matmul_into(&w_t[l], &mut slot.z[l]);
                        for r in 0..rows {
                            for (v, b) in slot.z[l].row_mut(r).iter_mut().zip(&layers[l].b) {
                                *v += b;
                            }
                        }
                        if l + 1 < n_layers {
                            let act = &mut rest[0];
                            act.reset(rows, dims[l + 1]);
                            for r in 0..rows {
                                let zr = slot.z[l].row(r);
                                let ar = act.row_mut(r);
                                if has_dropout {
                                    let mr = masks[l].row(slot.r0 + r);
                                    for ((v, z), k) in ar.iter_mut().zip(zr).zip(mr) {
                                        *v = leaky(*z, slope) * k;
                                    }
                                } else {
                                    for (v, z) in ar.iter_mut().zip(zr) {
                                        *v = leaky(*z, slope);
                                    }
                                }
                            }
                        }
                    }

                    // Backward: squared loss, delta = 2 (pred - y) / batch.
                    let pred = &slot.z[n_layers - 1];
                    slot.delta.reset(rows, pred.cols());
                    for r in 0..rows {
                        for c in 0..pred.cols() {
                            slot.delta[(r, c)] = scale * (pred[(r, c)] - slot.yb[(r, c)]);
                        }
                    }
                    for l in (0..n_layers).rev() {
                        // grad_w = delta^T * a[l], accumulated row by row so
                        // every (out, in) entry is a left fold over the
                        // chunk's rows in input order.
                        let g = &mut slot.grads[l];
                        g.reset(layers[l].w.rows(), layers[l].w.cols());
                        for r in 0..rows {
                            let ar = slot.a[l].row(r);
                            for o in 0..g.gw.rows() {
                                let d = slot.delta[(r, o)];
                                g.gb[o] += d;
                                for (gv, av) in g.gw.row_mut(o).iter_mut().zip(ar) {
                                    *gv += d * av;
                                }
                            }
                        }
                        if l > 0 {
                            slot.delta.matmul_into(&layers[l].w, &mut slot.next_delta);
                            let nd = &mut slot.next_delta;
                            for r in 0..rows {
                                let zr = slot.z[l - 1].row(r);
                                let dr = nd.row_mut(r);
                                if has_dropout {
                                    let mr = masks[l - 1].row(slot.r0 + r);
                                    for ((v, z), k) in dr.iter_mut().zip(zr).zip(mr) {
                                        *v *= leaky_deriv(*z, slope) * k;
                                    }
                                } else {
                                    for (v, z) in dr.iter_mut().zip(zr) {
                                        *v *= leaky_deriv(*z, slope);
                                    }
                                }
                            }
                            std::mem::swap(&mut slot.delta, &mut slot.next_delta);
                        }
                    }
                });

                // Reduce chunk partials in chunk order (fixed association),
                // then take the optimizer steps serially.
                for l in (0..n_layers).rev() {
                    let total = &mut totals[l];
                    total.reset(self.layers[l].w.rows(), self.layers[l].w.cols());
                    for slot in &slots[..ranges.len()] {
                        total.gw.add_in_place(&slot.grads[l].gw);
                        for (t, g) in total.gb.iter_mut().zip(&slot.grads[l].gb) {
                            *t += g;
                        }
                    }
                    let (w_opt, b_opt) = &mut opts[l];
                    w_opt.step(self.layers[l].w.as_mut_slice(), total.gw.as_slice());
                    b_opt.step(&mut self.layers[l].b, &total.gb);
                }
            }
        }

        if self
            .layers
            .iter()
            .any(|l| !l.w.as_slice().iter().all(|v| v.is_finite()))
        {
            return Err(MlError::Diverged);
        }
        self.x_scaler = Some(x_scaler);
        self.y_scaler = Some(y_scaler);
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Matrix, MlError> {
        if self.layers.is_empty() {
            return Err(MlError::NotFitted);
        }
        if x.cols() != self.n_features {
            return Err(MlError::ShapeMismatch {
                expected: self.n_features,
                got: x.cols(),
            });
        }
        let xs = self
            .x_scaler
            .as_ref()
            .ok_or(MlError::NotFitted)?
            .transform(x);
        let (_, out) = self.forward_all(&xs);
        Ok(self
            .y_scaler
            .as_ref()
            .ok_or(MlError::NotFitted)?
            .inverse_transform(&out))
    }

    fn name(&self) -> &'static str {
        "MLPR"
    }
}

impl Differentiable for Mlp {
    fn input_jacobian(&self, x: &[f64]) -> Result<Matrix, MlError> {
        if self.layers.is_empty() {
            return Err(MlError::NotFitted);
        }
        if x.len() != self.n_features {
            return Err(MlError::ShapeMismatch {
                expected: self.n_features,
                got: x.len(),
            });
        }
        let x_scaler = self.x_scaler.as_ref().ok_or(MlError::NotFitted)?;
        let y_scaler = self.y_scaler.as_ref().ok_or(MlError::NotFitted)?;
        let mut row = x.to_vec();
        x_scaler.transform_row(&mut row);
        let xm = Matrix::from_rows(&[row]);
        let (zs, _) = self.forward_all(&xm);

        // Chain rule, back to front: J = W_L * D_{L-1} * W_{L-1} * ... * W_1,
        // where D_l = diag(leaky'(z_l)).
        let n_layers = self.layers.len();
        let mut jac = self.layers[n_layers - 1].w.clone();
        for l in (0..n_layers - 1).rev() {
            let z = &zs[l];
            let mut scaled = jac; // m x width(l+1)
            for r in 0..scaled.rows() {
                for (c, v) in scaled.row_mut(r).iter_mut().enumerate() {
                    *v *= leaky_deriv(z[(0, c)], self.cfg.leaky_slope);
                }
            }
            jac = scaled.matmul(&self.layers[l].w);
        }

        // Undo standardization: d y_real / d x_real = s_y * J / s_x.
        let sy = y_scaler.stds();
        let sx = x_scaler.stds();
        for o in 0..jac.rows() {
            for c in 0..jac.cols() {
                jac[(o, c)] *= sy[o] / sx[c];
            }
        }
        Ok(jac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2;

    fn small_cfg() -> MlpConfig {
        MlpConfig {
            hidden: vec![32, 32],
            epochs: 200,
            batch_size: 32,
            lr: 3e-3,
            leaky_slope: 0.01,
            dropout: 0.0,
            seed: 1,
        }
    }

    fn sine_dataset(n: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![i as f64 / n as f64 * 4.0 - 2.0])
            .collect();
        let ys: Vec<f64> = rows.iter().map(|r| (2.0 * r[0]).sin()).collect();
        Dataset::new(Matrix::from_rows(&rows), Matrix::column(&ys)).unwrap()
    }

    #[test]
    fn fits_sine_wave() {
        let d = sine_dataset(200);
        let mut m = Mlp::new(small_cfg());
        m.fit(&d).unwrap();
        let pred = m.predict(&d.x).unwrap();
        let score = r2(&d.y.col_vec(0), &pred.col_vec(0));
        assert!(score > 0.97, "r2 = {score}");
    }

    #[test]
    fn multi_output_shares_trunk() {
        let rows: Vec<Vec<f64>> = (0..300)
            .map(|i| vec![(i % 20) as f64 / 10.0 - 1.0, (i / 20) as f64 / 7.5 - 1.0])
            .collect();
        let ys: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| vec![r[0] * r[1], r[0] - r[1]])
            .collect();
        let d = Dataset::new(Matrix::from_rows(&rows), Matrix::from_rows(&ys)).unwrap();
        let mut m = Mlp::new(small_cfg());
        m.fit(&d).unwrap();
        let pred = m.predict(&d.x).unwrap();
        assert!(r2(&d.y.col_vec(0), &pred.col_vec(0)) > 0.9);
        assert!(r2(&d.y.col_vec(1), &pred.col_vec(1)) > 0.95);
    }

    #[test]
    fn input_jacobian_matches_finite_differences() {
        let d = sine_dataset(200);
        let mut m = Mlp::new(small_cfg());
        m.fit(&d).unwrap();
        for &x0 in &[-1.5, -0.3, 0.4, 1.2] {
            let jac = m.input_jacobian(&[x0]).unwrap();
            let h = 1e-5;
            let hi = m.predict(&Matrix::from_rows(&[vec![x0 + h]])).unwrap()[(0, 0)];
            let lo = m.predict(&Matrix::from_rows(&[vec![x0 - h]])).unwrap()[(0, 0)];
            let fd = (hi - lo) / (2.0 * h);
            assert!(
                (jac[(0, 0)] - fd).abs() < 1e-4 * (1.0 + fd.abs()),
                "at {x0}: analytic {} vs fd {fd}",
                jac[(0, 0)]
            );
        }
    }

    #[test]
    fn jacobian_shape_is_outputs_by_features() {
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![i as f64, 2.0 * i as f64, 1.0])
            .collect();
        let ys: Vec<Vec<f64>> = rows.iter().map(|r| vec![r[0], r[1]]).collect();
        let d = Dataset::new(Matrix::from_rows(&rows), Matrix::from_rows(&ys)).unwrap();
        let mut m = Mlp::new(MlpConfig {
            hidden: vec![8],
            epochs: 5,
            ..small_cfg()
        });
        m.fit(&d).unwrap();
        let jac = m.input_jacobian(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!((jac.rows(), jac.cols()), (2, 3));
    }

    #[test]
    fn dropout_training_still_converges() {
        let d = sine_dataset(200);
        let mut m = Mlp::new(MlpConfig {
            dropout: 0.1,
            epochs: 300,
            ..small_cfg()
        });
        m.fit(&d).unwrap();
        let pred = m.predict(&d.x).unwrap();
        assert!(r2(&d.y.col_vec(0), &pred.col_vec(0)) > 0.9);
    }

    #[test]
    fn deterministic_per_seed() {
        let d = sine_dataset(50);
        let cfg = MlpConfig {
            epochs: 10,
            ..small_cfg()
        };
        let mut a = Mlp::new(cfg.clone());
        let mut b = Mlp::new(cfg);
        a.fit(&d).unwrap();
        b.fit(&d).unwrap();
        assert_eq!(a.predict(&d.x).unwrap(), b.predict(&d.x).unwrap());
    }

    #[test]
    fn unfitted_errors() {
        let m = Mlp::paper_default();
        assert_eq!(m.predict(&Matrix::zeros(1, 1)), Err(MlError::NotFitted));
        assert_eq!(m.input_jacobian(&[0.0]), Err(MlError::NotFitted));
    }

    #[test]
    fn width_mismatch_errors() {
        let d = sine_dataset(30);
        let mut m = Mlp::new(MlpConfig {
            epochs: 2,
            ..small_cfg()
        });
        m.fit(&d).unwrap();
        assert!(matches!(
            m.predict(&Matrix::zeros(1, 3)),
            Err(MlError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            m.input_jacobian(&[0.0, 1.0]),
            Err(MlError::ShapeMismatch { .. })
        ));
    }
}
