//! Multilayer perceptron regressor (the paper's "MLPR") with leaky-ReLU
//! activations, inverted dropout, Adam training, and **input gradients**.
//!
//! The input Jacobian is what lets the ISOP+ local-exploration stage run
//! gradient descent on *design parameters* through the surrogate.

use crate::dataset::{Dataset, Scaler};
use crate::linalg::Matrix;
use crate::optim::Adam;
use crate::{Differentiable, MlError, Regressor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// MLP hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Hidden layer widths, e.g. `[128, 128, 64]`.
    pub hidden: Vec<usize>,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Negative-side slope of the leaky ReLU.
    pub leaky_slope: f64,
    /// Dropout probability on hidden activations (0 disables).
    pub dropout: f64,
    /// RNG seed for init, shuffling, and dropout masks.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self {
            hidden: vec![128, 128, 64],
            epochs: 40,
            batch_size: 64,
            lr: 1e-3,
            leaky_slope: 0.01,
            dropout: 0.05,
            seed: 0,
        }
    }
}

/// One dense layer: `out = a_in * w^T + b`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Dense {
    /// `n_out x n_in`.
    w: Matrix,
    b: Vec<f64>,
}

impl Dense {
    fn init(n_in: usize, n_out: usize, rng: &mut StdRng) -> Self {
        // He-style initialization suited to ReLU-family activations.
        let scale = (2.0 / n_in as f64).sqrt();
        let mut w = Matrix::zeros(n_out, n_in);
        for v in w.as_mut_slice() {
            *v = (rng.gen::<f64>() * 2.0 - 1.0) * scale;
        }
        Self {
            w,
            b: vec![0.0; n_out],
        }
    }

    /// `a (n x in) -> z (n x out)`.
    fn forward(&self, a: &Matrix) -> Matrix {
        // `w` is stored `out x in`, i.e. already the transposed right
        // operand — feed it to the kernel directly instead of paying a
        // transpose allocation per layer per call.
        let mut z = a.matmul_transposed(&self.w);
        for r in 0..z.rows() {
            for (v, b) in z.row_mut(r).iter_mut().zip(&self.b) {
                *v += b;
            }
        }
        z
    }
}

#[inline]
fn leaky(v: f64, slope: f64) -> f64 {
    if v >= 0.0 {
        v
    } else {
        slope * v
    }
}

#[inline]
fn leaky_deriv(v: f64, slope: f64) -> f64 {
    if v >= 0.0 {
        1.0
    } else {
        slope
    }
}

/// Multilayer perceptron regressor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    cfg: MlpConfig,
    layers: Vec<Dense>,
    x_scaler: Option<Scaler>,
    y_scaler: Option<Scaler>,
    n_features: usize,
    n_outputs: usize,
}

impl Mlp {
    /// Creates an unfitted MLP.
    pub fn new(cfg: MlpConfig) -> Self {
        Self {
            cfg,
            layers: Vec::new(),
            x_scaler: None,
            y_scaler: None,
            n_features: 0,
            n_outputs: 0,
        }
    }

    /// The paper's MLPR surrogate configuration.
    pub fn paper_default() -> Self {
        Self::new(MlpConfig::default())
    }

    /// Training configuration.
    pub fn config(&self) -> &MlpConfig {
        &self.cfg
    }

    /// Forward pass in the standardized space, returning pre-activations per
    /// layer and the final output. `zs[l]` is the pre-activation of layer `l`.
    fn forward_all(&self, x: &Matrix) -> (Vec<Matrix>, Matrix) {
        let mut zs = Vec::with_capacity(self.layers.len());
        let mut a = x.clone();
        for (l, layer) in self.layers.iter().enumerate() {
            let z = layer.forward(&a);
            if l + 1 < self.layers.len() {
                let mut act = z.clone();
                for v in act.as_mut_slice() {
                    *v = leaky(*v, self.cfg.leaky_slope);
                }
                zs.push(z);
                a = act;
            } else {
                zs.push(z.clone());
                a = z;
            }
        }
        (zs, a)
    }
}

impl Regressor for Mlp {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        self.n_features = data.n_features();
        self.n_outputs = data.n_outputs();
        let x_scaler = Scaler::fit(&data.x);
        let y_scaler = Scaler::fit(&data.y);
        let xs = x_scaler.transform(&data.x);
        let ys = y_scaler.transform(&data.y);

        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let mut dims = vec![self.n_features];
        dims.extend_from_slice(&self.cfg.hidden);
        dims.push(self.n_outputs);
        self.layers = dims
            .windows(2)
            .map(|w| Dense::init(w[0], w[1], &mut rng))
            .collect();

        // One Adam per parameter tensor.
        let mut opts: Vec<(Adam, Adam)> = self
            .layers
            .iter()
            .map(|l| {
                (
                    Adam::new(self.cfg.lr, l.w.rows() * l.w.cols()),
                    Adam::new(self.cfg.lr, l.b.len()),
                )
            })
            .collect();

        let n = data.len();
        let bs = self.cfg.batch_size.clamp(1, n);
        let mut order: Vec<usize> = (0..n).collect();
        let keep = 1.0 - self.cfg.dropout;

        for epoch in 0..self.cfg.epochs {
            // Step decay: halve the learning rate at 50% and again at 75%
            // of training, a standard schedule that lets Adam settle.
            let decay = if epoch * 4 >= self.cfg.epochs * 3 {
                0.25
            } else if epoch * 2 >= self.cfg.epochs {
                0.5
            } else {
                1.0
            };
            for (w_opt, b_opt) in &mut opts {
                w_opt.set_learning_rate(self.cfg.lr * decay);
                b_opt.set_learning_rate(self.cfg.lr * decay);
            }
            order.shuffle(&mut rng);
            for chunk in order.chunks(bs) {
                // Gather the minibatch.
                let mut xb = Matrix::zeros(chunk.len(), self.n_features);
                let mut yb = Matrix::zeros(chunk.len(), self.n_outputs);
                for (r, &i) in chunk.iter().enumerate() {
                    xb.row_mut(r).copy_from_slice(xs.row(i));
                    yb.row_mut(r).copy_from_slice(ys.row(i));
                }

                // Forward with cached activations (post-activation `as_`,
                // pre-activation `zs`), applying inverted dropout on hidden
                // activations.
                let n_layers = self.layers.len();
                let mut as_: Vec<Matrix> = vec![xb];
                let mut zs: Vec<Matrix> = Vec::with_capacity(n_layers);
                let mut masks: Vec<Option<Vec<f64>>> = Vec::with_capacity(n_layers);
                for (l, layer) in self.layers.iter().enumerate() {
                    let z = layer.forward(&as_[l]);
                    if l + 1 < n_layers {
                        let mut act = z.clone();
                        for v in act.as_mut_slice() {
                            *v = leaky(*v, self.cfg.leaky_slope);
                        }
                        let mask = if self.cfg.dropout > 0.0 {
                            let m: Vec<f64> = act
                                .as_slice()
                                .iter()
                                .map(|_| {
                                    if rng.gen::<f64>() < keep {
                                        1.0 / keep
                                    } else {
                                        0.0
                                    }
                                })
                                .collect();
                            for (v, k) in act.as_mut_slice().iter_mut().zip(&m) {
                                *v *= k;
                            }
                            Some(m)
                        } else {
                            None
                        };
                        masks.push(mask);
                        zs.push(z);
                        as_.push(act);
                    } else {
                        masks.push(None);
                        zs.push(z.clone());
                        as_.push(z);
                    }
                }

                // Backward: squared loss, delta = 2 (pred - y) / batch.
                let pred = &as_[n_layers];
                let mut delta = Matrix::zeros(pred.rows(), pred.cols());
                let scale = 2.0 / chunk.len() as f64;
                for r in 0..pred.rows() {
                    for c in 0..pred.cols() {
                        delta[(r, c)] = scale * (pred[(r, c)] - yb[(r, c)]);
                    }
                }

                for l in (0..n_layers).rev() {
                    let grad_w = delta.transpose().matmul(&as_[l]);
                    let grad_b: Vec<f64> = (0..delta.cols())
                        .map(|c| delta.col_vec(c).iter().sum())
                        .collect();
                    if l > 0 {
                        let mut next = delta.matmul(&self.layers[l].w);
                        if let Some(mask) = &masks[l - 1] {
                            for (v, k) in next.as_mut_slice().iter_mut().zip(mask) {
                                *v *= k;
                            }
                        }
                        for (v, z) in next.as_mut_slice().iter_mut().zip(zs[l - 1].as_slice()) {
                            *v *= leaky_deriv(*z, self.cfg.leaky_slope);
                        }
                        let (w_opt, b_opt) = &mut opts[l];
                        w_opt.step(self.layers[l].w.as_mut_slice(), grad_w.as_slice());
                        b_opt.step(&mut self.layers[l].b, &grad_b);
                        delta = next;
                    } else {
                        let (w_opt, b_opt) = &mut opts[l];
                        w_opt.step(self.layers[l].w.as_mut_slice(), grad_w.as_slice());
                        b_opt.step(&mut self.layers[l].b, &grad_b);
                    }
                }
            }
        }

        if self
            .layers
            .iter()
            .any(|l| !l.w.as_slice().iter().all(|v| v.is_finite()))
        {
            return Err(MlError::Diverged);
        }
        self.x_scaler = Some(x_scaler);
        self.y_scaler = Some(y_scaler);
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Matrix, MlError> {
        if self.layers.is_empty() {
            return Err(MlError::NotFitted);
        }
        if x.cols() != self.n_features {
            return Err(MlError::ShapeMismatch {
                expected: self.n_features,
                got: x.cols(),
            });
        }
        let xs = self
            .x_scaler
            .as_ref()
            .ok_or(MlError::NotFitted)?
            .transform(x);
        let (_, out) = self.forward_all(&xs);
        Ok(self
            .y_scaler
            .as_ref()
            .ok_or(MlError::NotFitted)?
            .inverse_transform(&out))
    }

    fn name(&self) -> &'static str {
        "MLPR"
    }
}

impl Differentiable for Mlp {
    fn input_jacobian(&self, x: &[f64]) -> Result<Matrix, MlError> {
        if self.layers.is_empty() {
            return Err(MlError::NotFitted);
        }
        if x.len() != self.n_features {
            return Err(MlError::ShapeMismatch {
                expected: self.n_features,
                got: x.len(),
            });
        }
        let x_scaler = self.x_scaler.as_ref().ok_or(MlError::NotFitted)?;
        let y_scaler = self.y_scaler.as_ref().ok_or(MlError::NotFitted)?;
        let mut row = x.to_vec();
        x_scaler.transform_row(&mut row);
        let xm = Matrix::from_rows(&[row]);
        let (zs, _) = self.forward_all(&xm);

        // Chain rule, back to front: J = W_L * D_{L-1} * W_{L-1} * ... * W_1,
        // where D_l = diag(leaky'(z_l)).
        let n_layers = self.layers.len();
        let mut jac = self.layers[n_layers - 1].w.clone();
        for l in (0..n_layers - 1).rev() {
            let z = &zs[l];
            let mut scaled = jac; // m x width(l+1)
            for r in 0..scaled.rows() {
                for (c, v) in scaled.row_mut(r).iter_mut().enumerate() {
                    *v *= leaky_deriv(z[(0, c)], self.cfg.leaky_slope);
                }
            }
            jac = scaled.matmul(&self.layers[l].w);
        }

        // Undo standardization: d y_real / d x_real = s_y * J / s_x.
        let sy = y_scaler.stds();
        let sx = x_scaler.stds();
        for o in 0..jac.rows() {
            for c in 0..jac.cols() {
                jac[(o, c)] *= sy[o] / sx[c];
            }
        }
        Ok(jac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2;

    fn small_cfg() -> MlpConfig {
        MlpConfig {
            hidden: vec![32, 32],
            epochs: 200,
            batch_size: 32,
            lr: 3e-3,
            leaky_slope: 0.01,
            dropout: 0.0,
            seed: 1,
        }
    }

    fn sine_dataset(n: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![i as f64 / n as f64 * 4.0 - 2.0])
            .collect();
        let ys: Vec<f64> = rows.iter().map(|r| (2.0 * r[0]).sin()).collect();
        Dataset::new(Matrix::from_rows(&rows), Matrix::column(&ys)).unwrap()
    }

    #[test]
    fn fits_sine_wave() {
        let d = sine_dataset(200);
        let mut m = Mlp::new(small_cfg());
        m.fit(&d).unwrap();
        let pred = m.predict(&d.x).unwrap();
        let score = r2(&d.y.col_vec(0), &pred.col_vec(0));
        assert!(score > 0.97, "r2 = {score}");
    }

    #[test]
    fn multi_output_shares_trunk() {
        let rows: Vec<Vec<f64>> = (0..300)
            .map(|i| vec![(i % 20) as f64 / 10.0 - 1.0, (i / 20) as f64 / 7.5 - 1.0])
            .collect();
        let ys: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| vec![r[0] * r[1], r[0] - r[1]])
            .collect();
        let d = Dataset::new(Matrix::from_rows(&rows), Matrix::from_rows(&ys)).unwrap();
        let mut m = Mlp::new(small_cfg());
        m.fit(&d).unwrap();
        let pred = m.predict(&d.x).unwrap();
        assert!(r2(&d.y.col_vec(0), &pred.col_vec(0)) > 0.9);
        assert!(r2(&d.y.col_vec(1), &pred.col_vec(1)) > 0.95);
    }

    #[test]
    fn input_jacobian_matches_finite_differences() {
        let d = sine_dataset(200);
        let mut m = Mlp::new(small_cfg());
        m.fit(&d).unwrap();
        for &x0 in &[-1.5, -0.3, 0.4, 1.2] {
            let jac = m.input_jacobian(&[x0]).unwrap();
            let h = 1e-5;
            let hi = m.predict(&Matrix::from_rows(&[vec![x0 + h]])).unwrap()[(0, 0)];
            let lo = m.predict(&Matrix::from_rows(&[vec![x0 - h]])).unwrap()[(0, 0)];
            let fd = (hi - lo) / (2.0 * h);
            assert!(
                (jac[(0, 0)] - fd).abs() < 1e-4 * (1.0 + fd.abs()),
                "at {x0}: analytic {} vs fd {fd}",
                jac[(0, 0)]
            );
        }
    }

    #[test]
    fn jacobian_shape_is_outputs_by_features() {
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![i as f64, 2.0 * i as f64, 1.0])
            .collect();
        let ys: Vec<Vec<f64>> = rows.iter().map(|r| vec![r[0], r[1]]).collect();
        let d = Dataset::new(Matrix::from_rows(&rows), Matrix::from_rows(&ys)).unwrap();
        let mut m = Mlp::new(MlpConfig {
            hidden: vec![8],
            epochs: 5,
            ..small_cfg()
        });
        m.fit(&d).unwrap();
        let jac = m.input_jacobian(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!((jac.rows(), jac.cols()), (2, 3));
    }

    #[test]
    fn dropout_training_still_converges() {
        let d = sine_dataset(200);
        let mut m = Mlp::new(MlpConfig {
            dropout: 0.1,
            epochs: 300,
            ..small_cfg()
        });
        m.fit(&d).unwrap();
        let pred = m.predict(&d.x).unwrap();
        assert!(r2(&d.y.col_vec(0), &pred.col_vec(0)) > 0.9);
    }

    #[test]
    fn deterministic_per_seed() {
        let d = sine_dataset(50);
        let cfg = MlpConfig {
            epochs: 10,
            ..small_cfg()
        };
        let mut a = Mlp::new(cfg.clone());
        let mut b = Mlp::new(cfg);
        a.fit(&d).unwrap();
        b.fit(&d).unwrap();
        assert_eq!(a.predict(&d.x).unwrap(), b.predict(&d.x).unwrap());
    }

    #[test]
    fn unfitted_errors() {
        let m = Mlp::paper_default();
        assert_eq!(m.predict(&Matrix::zeros(1, 1)), Err(MlError::NotFitted));
        assert_eq!(m.input_jacobian(&[0.0]), Err(MlError::NotFitted));
    }

    #[test]
    fn width_mismatch_errors() {
        let d = sine_dataset(30);
        let mut m = Mlp::new(MlpConfig {
            epochs: 2,
            ..small_cfg()
        });
        m.fit(&d).unwrap();
        assert!(matches!(
            m.predict(&Matrix::zeros(1, 3)),
            Err(MlError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            m.input_jacobian(&[0.0, 1.0]),
            Err(MlError::ShapeMismatch { .. })
        ));
    }
}
