//! Trained-model registry: surrogate fits persisted into the evaluation
//! store and reused by later runs instead of retrained.
//!
//! Zoo training is deterministic for a fixed configuration and dataset, so
//! a fitted model is fully determined by three fingerprints:
//!
//! * the **space** fingerprint the surrogate serves (the same 48-bit
//!   `DesignKey` space id the evaluation cache shards by),
//! * the **config** fingerprint — FNV-1a over the canonical binary
//!   encoding of the *unfitted* model (architecture, hyperparameters,
//!   RNG seed — everything its `Serialize` impl carries), and
//! * the **data** fingerprint — FNV-1a over the training set's shape and
//!   the exact bit pattern of every sample.
//!
//! A registry probe that matches all three returns the stored model
//! **without calling `fit_with` at all** — a warm run records zero
//! `ml.fit.*` spans and zero `train.chunks` — and the exact-f64 codec
//! guarantees the loaded model predicts bit-identically to the one the
//! cold run trained. Any mismatch (or an unreadable record) falls through
//! to a cold fit whose result is then recorded for the next run.

use crate::dataset::Dataset;
use crate::MlError;
use isop_store::codec;
use isop_store::{ModelRecord, Store};
use isop_telemetry::{Counter, Telemetry};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Fingerprint of an unfitted model: FNV-1a over its canonical binary
/// encoding. Two configs that serialize identically train identically.
#[must_use]
pub fn config_fingerprint<T: Serialize>(config: &T) -> u64 {
    codec::fnv1a(&codec::encode(config))
}

/// Folds several fingerprints into one (order-sensitive) — used to key a
/// composite surrogate (e.g. the MLP+XGBoost pair) by its parts.
#[must_use]
pub fn combine_fingerprints(parts: &[u64]) -> u64 {
    let mut bytes = Vec::with_capacity(parts.len() * 8);
    for p in parts {
        bytes.extend_from_slice(&p.to_le_bytes());
    }
    codec::fnv1a(&bytes)
}

/// Fingerprint of a training set: shape plus the exact bit pattern of
/// every feature and target value.
#[must_use]
pub fn data_fingerprint(data: &Dataset) -> u64 {
    let mut bytes = Vec::with_capacity(16 + 8 * data.x.rows() * (data.x.cols() + data.y.cols()));
    for m in [&data.x, &data.y] {
        bytes.extend_from_slice(&(m.rows() as u64).to_le_bytes());
        bytes.extend_from_slice(&(m.cols() as u64).to_le_bytes());
        for r in 0..m.rows() {
            for v in m.row(r) {
                bytes.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
    }
    codec::fnv1a(&bytes)
}

/// A handle on the persistent store's model records. Clones share the
/// store; ticks `store.model_hits` / `store.model_misses`.
#[derive(Debug, Clone)]
pub struct ModelRegistry {
    store: Arc<Store>,
    telemetry: Telemetry,
}

impl ModelRegistry {
    /// A registry over `store`, telemetry disabled.
    #[must_use]
    pub fn new(store: Arc<Store>) -> Self {
        Self {
            store,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Routes `store.model_*` counters to `telemetry`.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The backing store.
    #[must_use]
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    /// Returns the stored model for `(space_id, config_fp, data_fp, name)`
    /// if one exists, otherwise runs `fit` and records its result for
    /// future runs. The boolean is `true` on a registry hit — a hit never
    /// invokes `fit`, so warm runs skip every training span.
    ///
    /// The data fingerprint is computed here from `data`; callers supply
    /// the config fingerprint ([`config_fingerprint`] /
    /// [`combine_fingerprints`]) because only they see the unfitted model.
    ///
    /// # Errors
    ///
    /// Propagates `fit` failures. Store read problems degrade to a cold
    /// fit, never an error — the registry is purely eliding.
    pub fn fit_or_load<T, F>(
        &self,
        space_id: u64,
        name: &str,
        config_fp: u64,
        data: &Dataset,
        fit: F,
    ) -> Result<(T, bool), MlError>
    where
        T: Serialize + Deserialize,
        F: FnOnce() -> Result<T, MlError>,
    {
        let data_fp = data_fingerprint(data);
        if let Ok(Some(record)) = self.store.get_model(space_id, config_fp, data_fp, name) {
            if let Ok(model) = T::from_value(&record.payload) {
                self.telemetry.incr(Counter::StoreModelHits);
                return Ok((model, true));
            }
        }
        self.telemetry.incr(Counter::StoreModelMisses);
        let model = fit()?;
        self.store.put_model(&ModelRecord {
            space_id,
            config_fp,
            data_fp,
            name: name.to_string(),
            payload: model.to_value(),
        });
        Ok((model, false))
    }

    /// Flushes buffered model records (and anything else pending) to disk.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn persist(&self) -> std::io::Result<()> {
        self.store.flush().map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::Matrix;
    use crate::models::{Mlp, MlpConfig};
    use crate::train::TrainContext;
    use crate::Regressor;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("isop-registry-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn tiny_data() -> Dataset {
        // y = [2 x0 - x1], 16 samples.
        let rows: Vec<Vec<f64>> = (0..16)
            .map(|i| vec![f64::from(i) * 0.25, f64::from(i % 4)])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] - r[1]).collect();
        Dataset::new(Matrix::from_rows(&rows), Matrix::column(&y)).expect("valid")
    }

    fn tiny_mlp() -> Mlp {
        Mlp::new(MlpConfig {
            hidden: vec![8],
            epochs: 30,
            batch_size: 8,
            lr: 5e-3,
            dropout: 0.0,
            ..MlpConfig::default()
        })
    }

    #[test]
    fn fingerprints_separate_configs_and_data() {
        let a = config_fingerprint(&tiny_mlp());
        assert_eq!(a, config_fingerprint(&tiny_mlp()), "deterministic");
        let other = Mlp::new(MlpConfig {
            hidden: vec![9],
            ..MlpConfig::default()
        });
        assert_ne!(a, config_fingerprint(&other));

        let data = tiny_data();
        let fp = data_fingerprint(&data);
        assert_eq!(fp, data_fingerprint(&tiny_data()), "deterministic");
        let mut perturbed = tiny_data();
        perturbed.x[(0, 0)] += 1e-12;
        assert_ne!(fp, data_fingerprint(&perturbed), "bit-sensitive");

        assert_ne!(
            combine_fingerprints(&[a, fp]),
            combine_fingerprints(&[fp, a])
        );
    }

    #[test]
    fn warm_load_skips_fit_and_predicts_bit_identically() {
        let dir = temp_dir("warm");
        let data = tiny_data();
        let ctx = TrainContext::serial();

        // Cold run: trains, records, persists.
        let cold_pred;
        {
            let store = Arc::new(Store::open(&dir).expect("opens"));
            let registry = ModelRegistry::new(Arc::clone(&store));
            let fp = config_fingerprint(&tiny_mlp());
            let (model, hit) = registry
                .fit_or_load(7, "MLPR", fp, &data, || {
                    let mut m = tiny_mlp();
                    m.fit_with(&data, &ctx)?;
                    Ok(m)
                })
                .expect("fits");
            assert!(!hit, "first run must train");
            cold_pred = model.predict(&data.x).expect("predicts");
            registry.persist().expect("flushes");
        }

        // Warm run in a "new process": same store dir, fresh handles.
        let tele = Telemetry::enabled();
        let store = Arc::new(Store::open(&dir).expect("reopens"));
        let registry = ModelRegistry::new(Arc::clone(&store)).with_telemetry(tele.clone());
        let fp = config_fingerprint(&tiny_mlp());
        let (model, hit) = registry
            .fit_or_load(7, "MLPR", fp, &data, || -> Result<Mlp, MlError> {
                panic!("warm run must not train")
            })
            .expect("loads");
        assert!(hit);
        assert_eq!(tele.counter(Counter::StoreModelHits), 1);
        assert_eq!(tele.counter(Counter::StoreModelMisses), 0);
        let warm_pred = model.predict(&data.x).expect("predicts");
        assert_eq!(cold_pred.rows(), warm_pred.rows());
        for r in 0..cold_pred.rows() {
            for (a, b) in cold_pred.row(r).iter().zip(warm_pred.row(r)) {
                assert_eq!(a.to_bits(), b.to_bits(), "bit-identical predictions");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn any_fingerprint_mismatch_falls_back_to_training() {
        let dir = temp_dir("miss");
        let data = tiny_data();
        let ctx = TrainContext::serial();
        let tele = Telemetry::enabled();
        let store = Arc::new(Store::open(&dir).expect("opens"));
        let registry = ModelRegistry::new(Arc::clone(&store)).with_telemetry(tele.clone());
        let fp = config_fingerprint(&tiny_mlp());
        let fit = |data: &Dataset| {
            let mut m = tiny_mlp();
            m.fit_with(data, &ctx)?;
            Ok(m)
        };
        let (_, hit) = registry
            .fit_or_load(7, "MLPR", fp, &data, || fit(&data))
            .expect("fits");
        assert!(!hit);
        // Different space, different config, different data, different name:
        // each one is a miss.
        let mut other_data = tiny_data();
        other_data.x[(0, 0)] += 1.0;
        for (space, name, cfg, d) in [
            (8, "MLPR", fp, &data),
            (7, "CNN", fp, &data),
            (7, "MLPR", fp ^ 1, &data),
            (7, "MLPR", fp, &other_data),
        ] {
            let (_, hit) = registry
                .fit_or_load(space, name, cfg, d, || fit(d))
                .expect("fits");
            assert!(!hit, "({space}, {name}) must miss");
        }
        // The original key still hits (in-process pending records count).
        let (_, hit) = registry
            .fit_or_load(7, "MLPR", fp, &data, || fit(&data))
            .expect("loads");
        assert!(hit);
        assert_eq!(tele.counter(Counter::StoreModelMisses), 5);
        assert_eq!(tele.counter(Counter::StoreModelHits), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fit_errors_propagate_and_record_nothing() {
        let dir = temp_dir("err");
        let data = tiny_data();
        let store = Arc::new(Store::open(&dir).expect("opens"));
        let registry = ModelRegistry::new(Arc::clone(&store));
        let out = registry.fit_or_load::<Mlp, _>(7, "MLPR", 1, &data, || Err(MlError::Diverged));
        assert!(out.is_err());
        registry.persist().expect("flushes");
        assert_eq!(store.stats().expect("stats").model_records, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
