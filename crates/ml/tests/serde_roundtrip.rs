//! Model persistence: every fitted regressor must serialize to JSON and
//! deserialize to an identical predictor (the bench harness caches trained
//! surrogates this way).

use isop_ml::dataset::Dataset;
use isop_ml::linalg::Matrix;
use isop_ml::models::{
    Cnn1d, Cnn1dConfig, DecisionTree, GradientBoosting, LinearSvr, Mlp, MlpConfig, PolynomialRidge,
    RandomForest, TreeConfig, XgbRegressor,
};
use isop_ml::Regressor;
use serde::de::DeserializeOwned;
use serde::Serialize;

fn toy_data() -> Dataset {
    let rows: Vec<Vec<f64>> = (0..120)
        .map(|i| vec![(i % 12) as f64, (i / 12) as f64])
        .collect();
    let ys: Vec<Vec<f64>> = rows
        .iter()
        .map(|r| vec![r[0] * r[1] * 0.1 + r[0], -r[1]])
        .collect();
    Dataset::new(Matrix::from_rows(&rows), Matrix::from_rows(&ys)).expect("valid")
}

fn roundtrip<M>(mut model: M)
where
    M: Regressor + Serialize + DeserializeOwned,
{
    let data = toy_data();
    model.fit(&data).expect("fits");
    let before = model.predict(&data.x).expect("predicts");
    let json = serde_json::to_string(&model).expect("serializes");
    let revived: M = serde_json::from_str(&json).expect("deserializes");
    let after = revived.predict(&data.x).expect("predicts after revive");
    // serde_json's float text form can differ by one ULP; anything larger
    // means real state was lost.
    for (a, b) in before.as_slice().iter().zip(after.as_slice()) {
        assert!(
            (a - b).abs() <= 1e-12 * (1.0 + a.abs()),
            "{} changed across JSON roundtrip: {a} vs {b}",
            model.name()
        );
    }
}

#[test]
fn decision_tree_roundtrips() {
    roundtrip(DecisionTree::new(TreeConfig::default(), 0));
}

#[test]
fn random_forest_roundtrips() {
    roundtrip(RandomForest::new(5, TreeConfig::default(), 1));
}

#[test]
fn gradient_boosting_roundtrips() {
    roundtrip(GradientBoosting::new(10, 0.2, TreeConfig::default(), 0));
}

#[test]
fn xgboost_roundtrips() {
    roundtrip(XgbRegressor::new(10, 0.2, 4, 1.0, 0.0));
}

#[test]
fn polynomial_ridge_roundtrips() {
    roundtrip(PolynomialRidge::new(2, 1e-6));
}

#[test]
fn linear_svr_roundtrips() {
    roundtrip(LinearSvr::new(0.01, 10.0, 20, 0.02, 0));
}

#[test]
fn mlp_roundtrips() {
    roundtrip(Mlp::new(MlpConfig {
        hidden: vec![16, 16],
        epochs: 10,
        dropout: 0.0,
        ..MlpConfig::default()
    }));
}

#[test]
fn cnn_roundtrips() {
    roundtrip(Cnn1d::new(Cnn1dConfig {
        expand: 32,
        channels: 4,
        conv_channels: 8,
        head: 16,
        epochs: 5,
        dropout: 0.0,
        ..Cnn1dConfig::default()
    }));
}

/// The dataset container itself roundtrips (used for the cached training
/// dataset).
#[test]
fn dataset_roundtrips() {
    let data = toy_data();
    let json = serde_json::to_string(&data).expect("serializes");
    let revived: Dataset = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(data.len(), revived.len());
    for (a, b) in data.x.as_slice().iter().zip(revived.x.as_slice()) {
        assert!((a - b).abs() <= 1e-12 * (1.0 + a.abs()));
    }
}
