//! Quickstart: solve the paper's T1 task — minimize insertion loss while
//! hitting a differential impedance of 85 +- 1 ohm — on the `S_1` search
//! space, end to end.
//!
//! For brevity this example uses the EM simulator itself as a "perfect"
//! surrogate ([`OracleSurrogate`]); see `surrogate_training.rs` for the full
//! ML-surrogate flow the paper uses.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use isop::prelude::*;
use isop_em::simulator::AnalyticalSolver;
use isop_hpo::budget::Budget;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The search space: Table III's S_1 (7.14e19 valid designs).
    let space = isop::spaces::s1();
    println!(
        "Search space S_1: {} parameters, {} bits, {:.2e} valid designs",
        space.n_params(),
        space.total_bits(),
        space.n_valid()
    );

    // 2. Engines: the accurate simulator for roll-out verification, and a
    //    surrogate for cheap exploration.
    let simulator = AnalyticalSolver::new();
    let surrogate = OracleSurrogate::new(AnalyticalSolver::new());

    // 3. The task: T1 = minimize |L| subject to Z = 85 +- 1 ohm.
    let objective = isop::tasks::objective_for(TaskId::T1, vec![]);

    // 4. Run the three-stage ISOP+ pipeline.
    let mut config = IsopConfig::default();
    config.harmonica.samples_per_stage = 200; // demo-size global stage
    let optimizer = IsopOptimizer::new(&space, &surrogate, &simulator, config);
    let outcome = optimizer.run(objective, Budget::unlimited(), 42);

    // 5. Inspect the result.
    let best = outcome.best().ok_or("no candidate survived roll-out")?;
    let sim = best.simulated.ok_or("candidate was not verified")?;
    println!("\nBest design found (verified by accurate simulation):");
    for (name, value) in isop_em::PARAM_NAMES.iter().zip(&best.values) {
        println!("  {name:>8} = {value}");
    }
    println!("\nPerformance:");
    println!("  Z    = {:.2} ohm (target 85 +- 1)", sim.z_diff);
    println!("  L    = {:.3} dB/inch @ 16 GHz", sim.insertion_loss);
    println!("  NEXT = {:.3} mV", sim.next);
    println!("\nConstraints satisfied: {}", outcome.success);
    println!(
        "Samples: {} valid ({} invalid encodings rejected); reported runtime {:.1}s ({:.1}s algorithm + {:.1}s accounted EM)",
        outcome.samples_seen,
        outcome.invalid_seen,
        outcome.total_seconds(),
        outcome.algorithm_seconds,
        outcome.em_seconds,
    );
    Ok(())
}
