//! Post-stack-up channel budgeting: take the layer ISOP+ optimized, route a
//! realistic multi-segment link through it (two layer-change vias), and
//! check the end-to-end insertion loss against an interface budget — the
//! step that turns a stack-up answer into a shippable link.
//!
//! Also demonstrates the stub-resonance hazard and the back-drilling fix.
//!
//! Run with:
//! ```sh
//! cargo run --release --example channel_budget
//! ```

use isop::prelude::*;
use isop_em::channel::{Channel, Element};
use isop_em::simulator::AnalyticalSolver;
use isop_em::stackup::DiffStripline;
use isop_em::via::Via;
use isop_hpo::budget::Budget;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Let ISOP+ pick the layer (T1: min loss at Z = 85 +- 1).
    let space = isop::spaces::s1();
    let simulator = AnalyticalSolver::new();
    let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
    let mut cfg = IsopConfig::default();
    cfg.harmonica.samples_per_stage = 150;
    let outcome = IsopOptimizer::new(&space, &surrogate, &simulator, cfg).run(
        isop::tasks::objective_for(TaskId::T1, vec![]),
        Budget::unlimited(),
        17,
    );
    let best = outcome.best().ok_or("no design")?;
    let layer = DiffStripline::from_vector(&best.values)?;
    let sim = best.simulated.ok_or("unverified")?;
    println!(
        "Optimized layer: Z = {:.2} ohm, L = {:.3} dB/in @ 16 GHz",
        sim.z_diff, sim.insertion_loss
    );

    // 2. Route a 12-inch link: 3" breakout, via down, 7" main run, via up,
    //    2" to the receiver. One via keeps a 25-mil stub (not back-drilled).
    let stubbed_via = Via {
        stub_length: 25.0,
        ..Via::default()
    };
    let drilled_via = Via {
        stub_length: 0.0,
        ..Via::default()
    };
    let seg = |inches: f64| Element::Stripline {
        layer,
        length_inches: inches,
    };
    let link = Channel::new(vec![
        seg(3.0),
        Element::Via(stubbed_via),
        seg(7.0),
        Element::Via(drilled_via),
        seg(2.0),
    ])?;

    // 3. Budget check across the operating band (e.g. PCIe-class: -28 dB at
    //    16 GHz Nyquist).
    let budget_db = -28.0;
    println!("\n{:>8} | {:>9} | {:>7}", "f (GHz)", "IL (dB)", "margin");
    for f_ghz in [2.0, 4.0, 8.0, 12.0, 16.0, 20.0, 28.0] {
        let f = f_ghz * 1e9;
        let il = link.insertion_loss_db(f);
        println!(
            "{f_ghz:>8.1} | {il:>9.2} | {:>6.2} {}",
            link.budget_margin_db(f, budget_db),
            if link.meets_budget(f, budget_db) {
                "ok"
            } else {
                "FAIL"
            }
        );
    }

    // 4. Quantify the back-drilling decision at the stub resonance.
    if let Some(f_res) = stubbed_via.stub_resonance_hz() {
        let all_drilled = Channel::new(vec![
            seg(3.0),
            Element::Via(drilled_via),
            seg(7.0),
            Element::Via(drilled_via),
            seg(2.0),
        ])?;
        println!(
            "\nStub resonance at {:.1} GHz: stubbed link {:.2} dB vs back-drilled {:.2} dB",
            f_res / 1e9,
            link.insertion_loss_db(f_res),
            all_drilled.insertion_loss_db(f_res)
        );
    }
    println!(
        "\nRouted length: {:.1} inches, reference impedance {:.1} ohm",
        link.routed_length_inches(),
        link.reference_impedance()
    );
    Ok(())
}
