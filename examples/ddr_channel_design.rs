//! Domain scenario: design a 100-ohm differential DDR/SerDes routing layer
//! under manufacturing constraints.
//!
//! A server-board designer needs a stripline layer that
//!
//! * hits 100 +- 2 ohm differential impedance (the T2 target),
//! * keeps near-end crosstalk under 0.1 mV,
//! * fits a routing pitch budget: `2 W_t + S_t <= 18` mils, and
//! * keeps pair distance within five core heights (`D_t <= 5 H_c`).
//!
//! This composes the paper's machinery beyond its preset tasks: a custom
//! objective with both output and input constraints on the wider `S_2`
//! space.
//!
//! Run with:
//! ```sh
//! cargo run --release --example ddr_channel_design
//! ```

use isop::prelude::*;
use isop_em::simulator::AnalyticalSolver;
use isop_hpo::budget::Budget;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let space = isop::spaces::s2();

    // Custom objective: minimize |L| with a NEXT band and two input
    // constraints. Parameter indices follow isop_em::PARAM_NAMES.
    let objective = Objective::new(
        FomSpec {
            terms: vec![(Metric::L, 1.0)],
        },
        vec![
            OutputConstraint::band(Metric::Z, 100.0, 2.0),
            OutputConstraint::band(Metric::Next, 0.0, 0.1),
        ],
        vec![
            InputConstraint::new(vec![(0, 2.0), (1, 1.0)], 18.0, "2*W_t + S_t <= 18"),
            InputConstraint::new(vec![(2, 1.0), (5, -5.0)], 0.0, "D_t <= 5*H_c"),
        ],
    );

    let simulator = AnalyticalSolver::new();
    let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
    let mut config = IsopConfig::default();
    config.harmonica.samples_per_stage = 250;
    config.cand_num = 3;

    let optimizer = IsopOptimizer::new(&space, &surrogate, &simulator, config);
    let outcome = optimizer.run(objective, Budget::unlimited(), 7);

    println!("Candidates (ranked by exact objective):");
    for (i, c) in outcome.candidates.iter().enumerate() {
        let sim = c.simulated.ok_or("unverified candidate")?;
        let pitch = 2.0 * c.values[0] + c.values[1];
        println!(
            "  #{i}: Z={:.2}  L={:.3}  NEXT={:.3}  pitch(2W+S)={:.1} mils  g={:.3}",
            sim.z_diff, sim.insertion_loss, sim.next, pitch, c.g_exact
        );
    }

    let best = outcome.best().ok_or("no candidate")?;
    let sim = best.simulated.ok_or("unverified")?;
    println!("\nChosen layer:");
    println!(
        "  W={:.1} S={:.1} D={:.0} Hc={:.1} Hp={:.1} Dk(core)={:.2}",
        best.values[0],
        best.values[1],
        best.values[2],
        best.values[5],
        best.values[6],
        best.values[10]
    );
    println!(
        "  Z = {:.2} ohm, L = {:.3} dB/in, NEXT = {:.3} mV, all constraints: {}",
        sim.z_diff, sim.insertion_loss, sim.next, outcome.success
    );
    Ok(())
}
