//! Board-level planning: optimize three signal-class layers of one server
//! board in a single call — 85-ohm SerDes, 100-ohm DDR, and a
//! crosstalk-critical breakout layer with manufacturing input constraints.
//!
//! Run with:
//! ```sh
//! cargo run --release --example board_plan
//! ```

use isop::board::{BoardPlan, LayerRequirement};
use isop::prelude::*;
use isop_em::simulator::AnalyticalSolver;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let plan = BoardPlan::new(vec![
        LayerRequirement::new("serdes-85", TaskId::T1),
        LayerRequirement::new("ddr-100", TaskId::T2),
        LayerRequirement::new("breakout-dense", TaskId::T3)
            .with_input_constraints(isop::tasks::table_ix_input_constraints()),
    ]);

    let space = isop::spaces::s2();
    let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
    let simulator = AnalyticalSolver::new();
    let mut cfg = IsopConfig::default();
    cfg.harmonica.samples_per_stage = 200;

    println!(
        "Planning {} layer classes over S_2 ({:.2e} designs each)...\n",
        plan.requirements().len(),
        space.n_valid()
    );
    let layers = plan.solve(&space, &surrogate, &simulator, &cfg, 2024);

    print!("{}", BoardPlan::report(&layers).to_markdown());

    let solved = layers.iter().filter(|l| l.success).count();
    println!(
        "\n{solved}/{} layer classes satisfied all constraints.",
        layers.len()
    );
    let total_samples: u64 = layers.iter().map(|l| l.samples_seen).sum();
    println!("Total surrogate samples spent: {total_samples}.");
    Ok(())
}
