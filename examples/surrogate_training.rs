//! The full ML-surrogate flow of the paper at demonstration scale:
//!
//! 1. generate a training dataset by querying the EM simulator over the
//!    Table III training ranges (the paper used 90 k samples; we use a few
//!    thousand here),
//! 2. train the 1D-CNN surrogate and report its test-set accuracy
//!    (Table VI metrics),
//! 3. run ISOP+ on T1 with the trained surrogate, and
//! 4. verify the winning design with the accurate simulator.
//!
//! Run with:
//! ```sh
//! cargo run --release --example surrogate_training
//! ```

use isop::data::generate_dataset;
use isop::prelude::*;
use isop_em::simulator::AnalyticalSolver;
use isop_hpo::budget::Budget;
use isop_ml::metrics::{mae, mape};
use isop_ml::models::{Cnn1d, Cnn1dConfig};
use isop_ml::Regressor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Dataset over the wide training ranges.
    let n_samples = 4000;
    println!("Generating {n_samples} samples through the EM simulator...");
    let data = generate_dataset(
        &isop::spaces::training_space(),
        n_samples,
        &AnalyticalSolver::new(),
        1,
    )?;
    let (train, test) = data.train_test_split(0.2, 2);

    // 2. Train the 1D-CNN (FC-expand -> reshape -> conv1d) surrogate.
    println!("Training the 1D-CNN surrogate...");
    let mut cnn = Cnn1d::new(Cnn1dConfig {
        epochs: 30,
        ..Cnn1dConfig::default()
    });
    cnn.fit(&train)?;
    let pred = cnn.predict(&test.x)?;
    for (i, name) in ["Z", "L", "NEXT"].iter().enumerate() {
        let truth = test.y.col_vec(i);
        let p = pred.col_vec(i);
        println!(
            "  {name:>4}: MAE = {:.4}, MAPE = {:.2}%",
            mae(&truth, &p),
            100.0 * mape(&truth, &p)
        );
    }

    // 3. Optimize T1 through the trained surrogate.
    let space = isop::spaces::s1();
    let surrogate = NeuralSurrogate::new(cnn);
    let simulator = AnalyticalSolver::new();
    let optimizer = IsopOptimizer::new(&space, &surrogate, &simulator, IsopConfig::default());
    let outcome = optimizer.run(
        isop::tasks::objective_for(TaskId::T1, vec![]),
        Budget::unlimited(),
        3,
    );

    // 4. Compare surrogate prediction and accurate verification.
    let best = outcome.best().ok_or("no candidate")?;
    let sim = best.simulated.ok_or("unverified")?;
    println!("\nBest design:");
    println!(
        "  surrogate predicted  Z = {:.2}, L = {:.3}, NEXT = {:.3}",
        best.predicted[0], best.predicted[1], best.predicted[2]
    );
    println!(
        "  simulator verified   Z = {:.2}, L = {:.3}, NEXT = {:.3}",
        sim.z_diff, sim.insertion_loss, sim.next
    );
    println!("  constraints satisfied: {}", outcome.success);
    println!(
        "\nNote: at this demo scale the surrogate is deliberately small; the\n\
         bench binaries (ISOP_DATASET/ISOP_EPOCHS) train the accurate one."
    );
    Ok(())
}
