//! Signal-integrity exploration with the EM substrate alone: what a
//! designer's "what-if" session looks like before any optimization.
//!
//! * sweeps trace width and spacing to map the impedance surface,
//! * runs a frequency sweep of insertion loss for one geometry,
//! * cross-checks the closed-form model against the 2-D finite-difference
//!   field solver, and
//! * quantifies the crosstalk cost of tightening the pair distance.
//!
//! Run with:
//! ```sh
//! cargo run --release --example stackup_explorer
//! ```

use isop_em::fdsolver::{solve_odd_mode, FdConfig};
use isop_em::simulator::{AnalyticalSolver, EmSimulator};
use isop_em::sparams::FrequencySweep;
use isop_em::stackup::DiffStripline;
use isop_em::stripline::odd_mode_z0;
use isop_em::units::ghz_to_hz;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sim = AnalyticalSolver::new();

    // 1. Impedance surface over (W, S).
    println!("Differential impedance (ohm) by trace width x spacing:");
    print!("{:>6}", "W\\S");
    let spacings = [3.0, 5.0, 7.0, 9.0];
    for s in spacings {
        print!("{s:>9.1}");
    }
    println!();
    for w in [3.0, 4.0, 5.0, 6.0, 7.0] {
        print!("{w:>6.1}");
        for s in spacings {
            let layer = DiffStripline::builder()
                .trace_width(w)
                .trace_spacing(s)
                .build()?;
            print!("{:>9.1}", sim.simulate(&layer)?.z_diff);
        }
        println!();
    }

    // 2. Frequency sweep of one candidate geometry.
    let layer = DiffStripline::builder()
        .trace_width(5.0)
        .trace_spacing(6.0)
        .dk_core(3.8)
        .dk_prepreg(3.8)
        .df_core(0.004)
        .df_prepreg(0.004)
        .build()?;
    let sweep = FrequencySweep::of_layer(&layer, 1e8, 4e10, 48, 1.0, odd_mode_z0(&layer));
    println!("\nInsertion loss of a 1-inch segment:");
    for f_ghz in [1.0, 4.0, 8.0, 16.0, 32.0] {
        println!(
            "  {f_ghz:>5.1} GHz: {:>7.3} dB",
            sweep.il_at(ghz_to_hz(f_ghz))
        );
    }

    // 3. Cross-check against the finite-difference field solver.
    let fd = solve_odd_mode(
        &layer,
        &FdConfig {
            cells_per_mil: 2.5,
            ..FdConfig::default()
        },
    );
    let analytical = sim.simulate(&layer)?;
    println!(
        "\nField-solver cross-check: Zdiff analytical {:.2} vs FD {:.2} ohm ({:.1}% apart, {} SOR iterations)",
        analytical.z_diff,
        fd.z_diff(),
        100.0 * (analytical.z_diff - fd.z_diff()).abs() / fd.z_diff(),
        fd.iterations
    );

    // 4. Crosstalk vs pair distance: the density/noise trade-off.
    println!("\nNEXT vs pair distance (tighter routing -> more crosstalk):");
    for d in [15.0, 20.0, 25.0, 30.0, 40.0] {
        let l = DiffStripline::builder().pair_distance(d).build()?;
        println!(
            "  D_t = {d:>4.0} mils: NEXT = {:>7.3} mV",
            sim.simulate(&l)?.next
        );
    }
    Ok(())
}
