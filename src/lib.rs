//! `isop-suite` — umbrella package hosting the workspace-level integration
//! tests (`tests/`) and runnable examples (`examples/`) for the ISOP+
//! reproduction. All functionality lives in the member crates re-exported
//! here for convenience.

pub use isop;
pub use isop_em;
pub use isop_hpo;
pub use isop_ml;
