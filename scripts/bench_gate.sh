#!/usr/bin/env bash
# CI perf-regression gate: runs the seeded smoke pipeline with telemetry,
# writes results/BENCH_ci.json, and fails on counter regressions or a >10%
# wall-clock overshoot against scripts/bench_thresholds.json.
#
# The smoke workload runs the pipeline twice with a shared evaluation
# cache: the second roll-out is served from cache, and the gate checks both
# bit-identity of the two runs and a >= 20% saved-EM-seconds floor.
#
# A training smoke phase then gates the data-parallel training engine:
# serial and 4-thread fits of a forest and an MLP must be bit-identical,
# the phase has its own wall-clock budget (max_train_seconds), and on
# hosts with >= 4 cores the forest fit must parallelize >= 2x.
#
# A fault-injection smoke phase then gates the fault-tolerant roll-out: a
# rate-0 run through the FaultInjector must be bit-identical to a run
# without the fault layer, a fixed-rate faulted run must be bit-identical
# at 1 vs 4 threads (outcome and every counter), and the faulted run's
# em.retries / em.failures_* / em.topped_up land in the counter budget, so
# a retry storm fails the gate. The phase has its own wall-clock budget
# (max_fault_seconds).
#
# A scheduler smoke phase then gates the async batched roll-out: under a
# fixed fault config the async schedule must deliver the synchronous
# schedule's candidate set while charging strictly less EM time, and the
# faulted async run must be bit-identical at 1 vs 4 threads. Its
# em.sched.batches / em.sched.slack_slots / em.sched.interleaved counters
# land in the counter budget, and the phase has its own wall-clock budget
# (max_sched_seconds).
#
# A sweep smoke phase then gates the batched EM frequency sweep: the
# structure-of-arrays SweepPlan must be bit-identical to the scalar
# per-point ABCD chain over a fleet of link channels (and at lane width 1
# vs 4), and when the simd-lanes feature is compiled in, the batched path
# must beat the scalar path by >= 2x. The phase has its own wall-clock
# budget (max_sweep_seconds).
#
# A warm-store smoke phase then gates the persistent evaluation store and
# the trained-model registry: the pipeline runs cold against a fresh
# store directory, then warm from fresh handles at 1 and 4 threads. The
# warm replays must be bit-identical to the cold run (candidates,
# charged+saved ledger sum, every counter across widths) while eliding
# >= 90% of the cold charged EM seconds, and a registry-fitted surrogate
# must reload with zero training work (no ml.fit.* span, train.chunks
# = 0) and bit-identical predictions. The store.* counters land in the
# counter budget, the phase has its own wall-clock budget
# (max_store_seconds), and the cold-vs-warm wall-clock comparison is
# written to results/BENCH_pr8.json.
#
# A multi-job engine smoke phase then gates the shared-executor job
# scheduler: a four-job mixed-space batch (two tenants, each one fresh
# space and one rerun) runs serially (one core permit, one wave slot) and
# concurrently (host cores, two wave slots). A job run solo must be
# bit-identical — candidates, both EM ledgers, every per-job counter — to
# the same job inside both batches, the wave-1 reruns must charge zero EM
# seconds (full cross-job elision from wave 0's flushed records), and the
# core budget's peak outstanding permits must respect the grant. On hosts
# with >= 4 cores the concurrent batch must beat the serial batch >= 1.5x
# wall-clock. The engine.* counters land in the counter budget, the phase
# has its own wall-clock budget (max_engine_seconds), and the
# serial-vs-concurrent comparison is written to results/BENCH_pr9.json.
#
# A daemon smoke phase finally gates the live optimization daemon: a real
# Daemon serves the four-job demo over a loopback TCP socket (NDJSON
# submit/status/shutdown) until every job's Finished frame reaches the
# journal, then a second daemon is deterministically killed mid-epoch —
# right after wave 1's safe-point journal flush — restarted on the same
# store directory, and must replay + resume to results bit-identical to a
# never-killed daemon (candidates, both EM ledgers, every per-job counter)
# with exactly one Finished frame per job, i.e. zero double-charged EM
# seconds. The daemon.* counters land in the counter budget, the phase has
# its own wall-clock budget (max_daemon_seconds), the kill-vs-calm
# comparison is written to results/BENCH_pr10.json, and the recovered
# journal's shards are exported to results/daemon_journal/ for the CI
# artifact.
#
# Usage:
#   scripts/bench_gate.sh            # gate against the checked-in budget
#   scripts/bench_gate.sh --update   # refresh the budget from a local run
#   scripts/bench_gate.sh --no-cache # cache off; fails a cache-on budget
#                                    # (em.cache.misses over budget)
set -euo pipefail
cd "$(dirname "$0")/.."

if [ ! -d results ]; then
  echo "bench_gate: results/ is missing — run from a full checkout of the repo root" >&2
  echo "bench_gate: (the gate writes results/BENCH_ci.json next to the checked-in baselines)" >&2
  exit 1
fi

cargo run --release --offline -p isop-bench --bin bench_gate -- "$@"
