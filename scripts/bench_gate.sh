#!/usr/bin/env bash
# CI perf-regression gate: runs the seeded smoke pipeline with telemetry,
# writes results/BENCH_ci.json, and fails on counter regressions or a >10%
# wall-clock overshoot against scripts/bench_thresholds.json.
#
# Usage:
#   scripts/bench_gate.sh            # gate against the checked-in budget
#   scripts/bench_gate.sh --update   # refresh the budget from a local run
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release --offline -p isop-bench --bin bench_gate -- "$@"
