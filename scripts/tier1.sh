#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, and warning-free clippy.
# The workspace vendors every external dependency (see vendor/), so all
# steps run offline.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ ! -d results ]; then
  echo "tier1: results/ is missing — run from a full checkout of the repo root" >&2
  echo "tier1: (the checked-in bench artifacts under results/ are part of the tree)" >&2
  exit 1
fi

cargo build --release --offline --workspace
cargo test --offline --workspace -q
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "tier1: OK"
