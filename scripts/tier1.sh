#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, and warning-free clippy.
# The workspace vendors every external dependency (see vendor/), so all
# steps run offline.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test --offline --workspace -q
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "tier1: OK"
