//! Lifecycle contracts of the live optimization daemon.
//!
//! Pins the daemon's headline promises end to end: per-job dispositions
//! (cancelled / deadline-expired / failed neighbors never perturb a
//! completing job), rolling tenant quotas enforced from *real* charged EM
//! seconds across epochs, per-request submission validation, crash
//! recovery that replays the journal bit-identically to an uninterrupted
//! run without double-charging an EM second, and the epoch-streaming
//! determinism claim — streaming jobs across epochs reproduces a one-shot
//! batch when epoch boundaries coincide with wave boundaries. The heavy
//! tests run under both 1 and 4 engine cores.

use isop::prelude::*;
use isop_hpo::harmonica::HarmonicaConfig;
use isop_hpo::hyperband::HyperbandConfig;
use isop_store::{JobState, Store};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A pipeline shape small enough to run many daemon epochs per test.
fn tiny_pipeline() -> IsopConfig {
    IsopConfig {
        harmonica: HarmonicaConfig {
            stages: 1,
            samples_per_stage: 40,
            top_monomials: 4,
            bits_per_stage: 6,
            ..HarmonicaConfig::default()
        },
        hyperband: HyperbandConfig {
            max_resource: 2.0,
            eta: 2.0,
        },
        gd_candidates: 2,
        gd_epochs: 5,
        cand_num: 2,
        ..IsopConfig::default()
    }
}

fn daemon_config(cores: usize, wave_slots: usize) -> DaemonConfig {
    DaemonConfig {
        engine: EngineConfig {
            cores,
            wave_slots,
            pipeline: tiny_pipeline(),
        },
        ..DaemonConfig::default()
    }
}

fn spec(id: &str, tenant: &str, seed: u64) -> JobSpec {
    JobSpec {
        id: id.to_string(),
        tenant: tenant.to_string(),
        task: "t1".to_string(),
        space: "s1".to_string(),
        seed,
        threads: 2,
        ..JobSpec::default()
    }
}

/// A unique scratch store directory, removed by [`Scratch::drop`].
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        Self(std::env::temp_dir().join(format!("isop-daemon-test-{tag}-{}", std::process::id())))
    }
    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A daemon wired to a fresh store handle on `dir`, like one `isop daemon`
/// process pointed at a cache directory.
fn daemon_on(dir: &Path, config: DaemonConfig) -> Daemon {
    let telemetry = Telemetry::enabled();
    let store = Arc::new(
        Store::open(dir)
            .expect("open store")
            .with_telemetry(telemetry.clone()),
    );
    Daemon::new(config)
        .with_store(store)
        .with_telemetry(telemetry)
}

fn submit(daemon: &Daemon, spec: JobSpec) {
    let response = daemon.handle_request(Request::Submit(spec));
    assert_eq!(response.error_kind(), None, "submit refused: {response:?}");
}

/// Runs every pending epoch to completion and returns all job results in
/// execution order.
fn drain(daemon: &Daemon) -> Vec<JobResult> {
    let mut jobs = Vec::new();
    while let Some((_, report)) = daemon.run_next_epoch().expect("epoch run") {
        jobs.extend(report.jobs);
    }
    jobs
}

fn job<'a>(jobs: &'a [JobResult], id: &str) -> &'a JobResult {
    jobs.iter()
        .find(|j| j.id == id)
        .unwrap_or_else(|| panic!("job '{id}' missing from report"))
}

/// Asserts two runs of the same job are indistinguishable: candidate sets,
/// both EM ledgers at exact bits, resolution, and every per-job counter.
/// Wall-clock fields are the only thing allowed to differ.
fn assert_job_identical(a: &JobResult, b: &JobResult, what: &str) {
    assert_eq!(a.candidates, b.candidates, "{what}: candidates diverged");
    assert_eq!(
        a.em_seconds_charged.to_bits(),
        b.em_seconds_charged.to_bits(),
        "{what}: charged EM ledger diverged"
    );
    assert_eq!(
        a.em_seconds_saved.to_bits(),
        b.em_seconds_saved.to_bits(),
        "{what}: saved EM ledger diverged"
    );
    assert_eq!(a.success, b.success, "{what}: success diverged");
    assert_eq!(a.resolution, b.resolution, "{what}: resolution diverged");
    assert_eq!(a.disposition, b.disposition, "{what}: disposition diverged");
    assert_eq!(
        a.report.samples_seen, b.report.samples_seen,
        "{what}: samples_seen diverged"
    );
    assert_eq!(
        a.report.invalid_seen, b.report.invalid_seen,
        "{what}: invalid_seen diverged"
    );
    let counters = |r: &JobResult| -> Vec<(String, u64)> {
        r.report
            .counters
            .iter()
            .map(|c| (c.name.clone(), c.value))
            .collect()
    };
    assert_eq!(counters(a), counters(b), "{what}: counters diverged");
}

/// Cancelled, deadline-expired, and panicking jobs surface their own
/// dispositions — and the job that completes next to them is bit-identical
/// to running with no such neighbors at all.
#[test]
fn dispositions_are_surfaced_without_touching_neighbors() {
    for cores in [1usize, 4] {
        let scratch = Scratch::new(&format!("dispositions-{cores}"));
        let daemon = daemon_on(scratch.path(), daemon_config(cores, 4));
        submit(&daemon, spec("ok", "acme", 11));
        submit(
            &daemon,
            JobSpec {
                deadline_seconds: 1e-9,
                ..spec("late", "acme", 12)
            },
        );
        submit(
            &daemon,
            JobSpec {
                chaos_panic: true,
                ..spec("boom", "acme", 13)
            },
        );
        submit(&daemon, spec("gone", "acme", 14));
        let cancelled = daemon.handle_line(r#"{"op":"cancel","id":"gone"}"#);
        assert_eq!(cancelled.error_kind(), None);

        let jobs = drain(&daemon);
        assert_eq!(jobs.len(), 4, "cores {cores}");
        assert_eq!(job(&jobs, "ok").disposition, "completed");
        assert_eq!(job(&jobs, "late").disposition, "deadline_expired");
        assert_eq!(job(&jobs, "boom").disposition, "failed");
        assert_eq!(job(&jobs, "gone").disposition, "cancelled");
        for stopped in ["late", "boom", "gone"] {
            let j = job(&jobs, stopped);
            assert!(
                j.candidates.is_empty(),
                "cores {cores}: stopped job '{stopped}' produced candidates"
            );
            assert_eq!(
                j.em_seconds_charged.to_bits(),
                0.0f64.to_bits(),
                "cores {cores}: stopped job '{stopped}' charged EM seconds"
            );
            assert!(
                !j.success,
                "cores {cores}: stopped job '{stopped}' succeeded"
            );
        }

        // The survivor matches a solo run on a fresh store bit for bit.
        let solo_scratch = Scratch::new(&format!("dispositions-solo-{cores}"));
        let solo = daemon_on(solo_scratch.path(), daemon_config(cores, 4));
        submit(&solo, spec("ok", "acme", 11));
        let solo_jobs = drain(&solo);
        assert_job_identical(
            job(&jobs, "ok"),
            job(&solo_jobs, "ok"),
            &format!("cores {cores}: 'ok' next to stopped neighbors"),
        );

        // Cancelling a finished job is an explicit no-op, not an error.
        let again = daemon.handle_line(r#"{"op":"cancel","id":"ok"}"#);
        assert_eq!(again.error_kind(), None);
        let status = daemon.handle_request(Request::Status(Some("gone".to_string())));
        let Response::Ok(fields) = status else {
            panic!("status failed")
        };
        assert_eq!(
            serde::json::Value::field(&fields, "phase").as_str(),
            Some("cancelled")
        );
    }
}

/// The rolling quota is fed by real charged EM seconds: a tenant that
/// burned its budget is refused until enough epochs slide the window past
/// its charges, and other tenants are never collateral damage.
#[test]
fn quota_is_enforced_from_real_charges_and_slides_with_epochs() {
    let scratch = Scratch::new("quota");
    let daemon = daemon_on(
        scratch.path(),
        DaemonConfig {
            quota_em_seconds: 1e-6,
            quota_window_epochs: 2,
            ..daemon_config(2, 2)
        },
    );
    submit(&daemon, spec("h0", "hog", 21));
    let jobs = drain(&daemon);
    assert!(
        job(&jobs, "h0").em_seconds_charged > 1e-6,
        "epoch must charge real EM seconds for the quota to bite"
    );

    // The window [0, 1] still covers epoch 0's charges: refused.
    let refused = daemon.handle_request(Request::Submit(spec("h1", "hog", 22)));
    assert_eq!(refused.error_kind(), Some("quota_exceeded"));
    // Tenants with no charges in the window are unaffected; running their
    // epochs advances the accumulating epoch number.
    submit(&daemon, spec("l0", "light-a", 23));
    drain(&daemon);
    submit(&daemon, spec("l1", "light-b", 24));
    drain(&daemon);

    // Three epochs ran, so the accumulating epoch is 3 and the window
    // [2, 3] no longer sees epoch 0: the hog is admitted again.
    submit(&daemon, spec("h1", "hog", 22));
    assert_eq!(daemon.pending_epochs(), 1);
}

/// Malformed, duplicate, and unknown-task submissions between two good
/// ones are refused individually and leave the good jobs' results
/// bit-identical to a clean session.
#[test]
fn refused_submissions_never_perturb_accepted_jobs() {
    let noisy_scratch = Scratch::new("noisy");
    let noisy = daemon_on(noisy_scratch.path(), daemon_config(2, 2));
    submit(&noisy, spec("a", "acme", 31));
    assert_eq!(noisy.handle_line("}{").error_kind(), Some("bad_request"));
    assert_eq!(
        noisy
            .handle_line(r#"{"op":"submit","job":{"id":"x","task":"t9"}}"#)
            .error_kind(),
        Some("unknown_task")
    );
    assert_eq!(
        noisy
            .handle_request(Request::Submit(spec("a", "acme", 99)))
            .error_kind(),
        Some("duplicate_id")
    );
    submit(&noisy, spec("b", "acme", 32));
    let noisy_jobs = drain(&noisy);
    assert_eq!(noisy_jobs.len(), 2);

    let clean_scratch = Scratch::new("clean");
    let clean = daemon_on(clean_scratch.path(), daemon_config(2, 2));
    submit(&clean, spec("a", "acme", 31));
    submit(&clean, spec("b", "acme", 32));
    let clean_jobs = drain(&clean);
    for id in ["a", "b"] {
        assert_job_identical(
            job(&noisy_jobs, id),
            job(&clean_jobs, id),
            &format!("'{id}' next to refused submissions"),
        );
    }
}

/// A daemon killed mid-epoch — after the first wave's safe-point flush —
/// restarts, replays the journal, and finishes the epoch bit-identically
/// to a daemon that was never killed, without double-charging an EM
/// second: the journal holds exactly one `Finished` frame per job.
#[test]
fn killed_mid_epoch_daemon_replays_bit_identically() {
    for cores in [1usize, 4] {
        let submissions = || {
            vec![
                spec("a0", "acme", 41),
                spec("a1", "acme", 42),
                spec("b0", "bolt", 43),
                spec("b1", "bolt", 44),
            ]
        };

        // Reference: the same four jobs, never interrupted.
        let calm_scratch = Scratch::new(&format!("calm-{cores}"));
        let calm = daemon_on(calm_scratch.path(), daemon_config(cores, 2));
        for s in submissions() {
            submit(&calm, s);
        }
        let calm_jobs = drain(&calm);
        assert_eq!(calm_jobs.len(), 4);

        // The victim crashes after wave 1 of its 2-wave epoch.
        let crash_scratch = Scratch::new(&format!("crash-{cores}"));
        let victim = daemon_on(
            crash_scratch.path(),
            DaemonConfig {
                chaos_crash_after_waves: 1,
                ..daemon_config(cores, 2)
            },
        );
        for s in submissions() {
            submit(&victim, s);
        }
        let err = victim.run_next_epoch().expect_err("chaos crash expected");
        assert!(err.contains("chaos"), "unexpected epoch error: {err}");
        drop(victim);

        // Restart on the same store directory.
        let revived = daemon_on(crash_scratch.path(), daemon_config(cores, 2));
        let recovery = revived.recover().expect("journal replay");
        assert_eq!(recovery.epochs_pending, 1, "cores {cores}");
        assert_eq!(recovery.jobs_replayed, 2, "cores {cores}");
        assert_eq!(recovery.jobs_resumed, 2, "cores {cores}");
        let revived_jobs = drain(&revived);
        assert_eq!(revived_jobs.len(), 4, "cores {cores}");

        for s in submissions() {
            assert_job_identical(
                job(&revived_jobs, &s.id),
                job(&calm_jobs, &s.id),
                &format!("cores {cores}: '{}' across kill + replay", s.id),
            );
        }

        // Zero double-charging: one Finished frame per job, no more.
        let store = Store::open(crash_scratch.path()).expect("reopen store");
        let frames = store.load_jobs().expect("journal");
        for s in submissions() {
            let finished = frames
                .iter()
                .filter(|f| f.state == JobState::Finished && f.job_id == s.id)
                .count();
            assert_eq!(
                finished, 1,
                "cores {cores}: job '{}' journaled {finished} Finished frames",
                s.id
            );
        }
    }
}

/// A daemon killed while a whole epoch is still queued resumes it after
/// restart exactly as submitted.
#[test]
fn queued_epoch_survives_a_restart() {
    let scratch = Scratch::new("queued-restart");
    let first = daemon_on(scratch.path(), daemon_config(2, 2));
    submit(&first, spec("a", "acme", 51));
    submit(&first, spec("b", "acme", 52));
    drop(first); // killed before any epoch ran; Submitted frames flushed

    let second = daemon_on(scratch.path(), daemon_config(2, 2));
    let recovery = second.recover().expect("journal replay");
    assert_eq!(recovery.epochs_pending, 1);
    assert_eq!(recovery.jobs_replayed, 0);
    assert_eq!(recovery.jobs_resumed, 2);
    let jobs = drain(&second);
    assert_eq!(jobs.len(), 2);

    let calm_scratch = Scratch::new("queued-restart-calm");
    let calm = daemon_on(calm_scratch.path(), daemon_config(2, 2));
    submit(&calm, spec("a", "acme", 51));
    submit(&calm, spec("b", "acme", 52));
    let calm_jobs = drain(&calm);
    for id in ["a", "b"] {
        assert_job_identical(
            job(&jobs, id),
            job(&calm_jobs, id),
            &format!("'{id}' across queued-epoch restart"),
        );
    }
}

/// Streaming jobs across epochs reproduces a one-shot engine batch of the
/// same jobs when epoch boundaries coincide with wave boundaries.
#[test]
fn epoch_streaming_matches_a_one_shot_batch() {
    for cores in [1usize, 4] {
        let specs = vec![
            spec("s0", "acme", 61),
            spec("s1", "acme", 62),
            spec("s2", "acme", 63),
            spec("s3", "acme", 64),
        ];

        // Streamed: two epochs of two jobs, wave_slots 2 — each epoch is
        // exactly one wave, so epoch boundaries sit on wave boundaries.
        let stream_scratch = Scratch::new(&format!("stream-{cores}"));
        let streamed = daemon_on(stream_scratch.path(), daemon_config(cores, 2));
        submit(&streamed, specs[0].clone());
        submit(&streamed, specs[1].clone());
        let (first_epoch, first) = streamed
            .run_next_epoch()
            .expect("epoch run")
            .expect("epoch pending");
        submit(&streamed, specs[2].clone());
        submit(&streamed, specs[3].clone());
        let (second_epoch, second) = streamed
            .run_next_epoch()
            .expect("epoch run")
            .expect("epoch pending");
        assert!(first_epoch < second_epoch);
        let mut streamed_jobs = first.jobs;
        streamed_jobs.extend(second.jobs);

        // One-shot: the same four jobs as a single engine batch.
        let batch_scratch = Scratch::new(&format!("batch-{cores}"));
        let telemetry = Telemetry::enabled();
        let store = Arc::new(
            Store::open(batch_scratch.path())
                .expect("open store")
                .with_telemetry(telemetry.clone()),
        );
        let mut queue = JobQueue::new();
        for s in &specs {
            queue.push(s.clone());
        }
        let batch = Engine::new(EngineConfig {
            cores,
            wave_slots: 2,
            pipeline: tiny_pipeline(),
        })
        .with_telemetry(telemetry)
        .with_store(store)
        .run(&queue)
        .expect("engine run");

        for s in &specs {
            assert_job_identical(
                job(&streamed_jobs, &s.id),
                job(&batch.jobs, &s.id),
                &format!("cores {cores}: '{}' streamed vs one-shot", s.id),
            );
        }
    }
}
