//! Integration tests of the batched-sweep determinism contract: the
//! structure-of-arrays [`SweepPlan`] only reorganizes *which* points are
//! evaluated together — every point still goes through the exact scalar
//! ABCD chain — so batched vs scalar, lane width 1 vs 4, and a cache-warm
//! pipeline replay must all be bit-identical, not merely close.

use isop::evalcache::{EvalCache, SurrogateMemo};
use isop::prelude::*;
use isop_em::channel::{Channel, Element};
use isop_em::simulator::AnalyticalSolver;
use isop_em::stackup::DiffStripline;
use isop_em::sweep::{lanes_compiled, LaneWidth, SweepPlan};
use isop_em::via::Via;
use isop_hpo::budget::Budget;
use isop_hpo::harmonica::HarmonicaConfig;
use isop_hpo::hyperband::HyperbandConfig;

const SEED: u64 = 3;
const N_FREQ: usize = 193;
const F_START_HZ: f64 = 1e8;
const F_STOP_HZ: f64 = 4e10;

/// A fleet of link-level channels sharing layers and via prototypes —
/// repeated segments are what the plan's interning amortizes, so identity
/// must hold exactly where the fast path takes its shortcuts.
fn fleet() -> Vec<Channel> {
    let layers: Vec<DiffStripline> = (0..3)
        .map(|i| DiffStripline {
            trace_width: 4.0 + 0.6 * i as f64,
            trace_spacing: 6.0 + 0.4 * i as f64,
            ..DiffStripline::default()
        })
        .collect();
    (0..7)
        .map(|c| {
            let mut elems = Vec::new();
            for s in 0..3usize {
                elems.push(Element::Stripline {
                    layer: layers[(c + s) % layers.len()],
                    length_inches: 0.5 + ((c + 2 * s) % 4) as f64,
                });
                if (c + s) % 2 == 0 {
                    elems.push(Element::Via(Via {
                        stub_length: if c % 3 == 0 { 20.0 } else { 0.0 },
                        ..Via::default()
                    }));
                }
            }
            Channel::new(elems).expect("valid channel")
        })
        .collect()
}

/// Flattens one channel's batched sweep into bit patterns of all four
/// S-parameters.
fn batched_bits(plan: &mut SweepPlan, ch: &Channel) -> Vec<u64> {
    let view = plan.sweep(ch);
    let mut bits = Vec::with_capacity(view.len() * 8);
    for i in 0..view.len() {
        for s in [view.s11(i), view.s21(i), view.s12(i), view.s22(i)] {
            bits.push(s.re.to_bits());
            bits.push(s.im.to_bits());
        }
    }
    bits
}

/// The same flattening through the scalar per-point ABCD chain.
fn scalar_bits(freqs: &[f64], ch: &Channel) -> Vec<u64> {
    let z = ch.reference_impedance();
    let mut bits = Vec::with_capacity(freqs.len() * 8);
    for &f in freqs {
        let (s11, s21, s12, s22) = ch.abcd(f).to_s_params(z);
        for s in [s11, s21, s12, s22] {
            bits.push(s.re.to_bits());
            bits.push(s.im.to_bits());
        }
    }
    bits
}

#[test]
fn batched_sweep_is_bit_identical_to_scalar_per_design_and_frequency() {
    let channels = fleet();
    let mut plan = SweepPlan::log_spaced(F_START_HZ, F_STOP_HZ, N_FREQ);
    let freqs = plan.freqs().to_vec();
    for (i, ch) in channels.iter().enumerate() {
        assert_eq!(
            batched_bits(&mut plan, ch),
            scalar_bits(&freqs, ch),
            "channel {i} diverged from the scalar path"
        );
    }
    // The warm plan interned something — the amortization is real, not a
    // fleet that happens to share nothing.
    assert!(plan.interned_prototypes() > 0);
}

#[test]
fn derived_loss_sweeps_match_the_per_point_helpers_bitwise() {
    let channels = fleet();
    let mut plan = SweepPlan::log_spaced(F_START_HZ, F_STOP_HZ, N_FREQ);
    let freqs = plan.freqs().to_vec();
    let (mut il, mut rl) = (Vec::new(), Vec::new());
    for ch in &channels {
        ch.insertion_loss_db_sweep(&mut plan, &mut il);
        ch.return_loss_db_sweep(&mut plan, &mut rl);
        for (k, &f) in freqs.iter().enumerate() {
            assert_eq!(il[k].to_bits(), ch.insertion_loss_db(f).to_bits());
            assert_eq!(rl[k].to_bits(), ch.return_loss_db(f).to_bits());
        }
    }
}

#[test]
fn lane_width_one_and_four_are_bit_identical() {
    let channels = fleet();
    let mut w1 = SweepPlan::log_spaced(F_START_HZ, F_STOP_HZ, N_FREQ).with_lanes(LaneWidth::W1);
    let mut w4 = SweepPlan::log_spaced(F_START_HZ, F_STOP_HZ, N_FREQ).with_lanes(LaneWidth::W4);
    for (i, ch) in channels.iter().enumerate() {
        assert_eq!(
            batched_bits(&mut w1, ch),
            batched_bits(&mut w4, ch),
            "channel {i} diverged between lane widths"
        );
    }
    // With the feature off, W4 silently degrades to width 1 — the contract
    // still holds, the comparison is just trivial.
    if lanes_compiled() {
        assert_eq!(w4.lane_width().effective(), 4);
    } else {
        assert_eq!(w4.lane_width().effective(), 1);
    }
}

fn smoke_config() -> IsopConfig {
    IsopConfig {
        harmonica: HarmonicaConfig {
            stages: 2,
            samples_per_stage: 120,
            top_monomials: 6,
            bits_per_stage: 8,
            ..HarmonicaConfig::default()
        },
        hyperband: HyperbandConfig {
            max_resource: 3.0,
            eta: 3.0,
        },
        gd_candidates: 4,
        gd_epochs: 25,
        cand_num: 3,
        ..IsopConfig::default()
    }
}

/// Cache-warm replay: a second pipeline run sharing the [`EvalCache`]
/// serves its accurate simulations from cache, and because those cached
/// results came from the same batched sweep machinery, the warm run's
/// candidates and FoM are bit-identical to the cold run's.
#[test]
fn cache_warm_replay_is_bit_identical() {
    let space = isop::spaces::s1();
    let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
    let telemetry = Telemetry::enabled();
    let simulator = AnalyticalSolver::new().with_telemetry(telemetry.clone());
    let cache = EvalCache::new();
    let run = || {
        IsopOptimizer::new(&space, &surrogate, &simulator, smoke_config())
            .with_telemetry(telemetry.clone())
            .with_eval_cache(cache.clone())
            .with_surrogate_memo(SurrogateMemo::disabled())
            .run(
                isop::tasks::objective_for(TaskId::T1, vec![]),
                Budget::unlimited(),
                SEED,
            )
    };
    let cold = run();
    let warm = run();

    let report = telemetry.run_report();
    assert!(report.counter("em.cache.hits") > 0, "warm run never hit");
    assert_eq!(cold.candidates, warm.candidates);
    let g_cold = cold.best().expect("candidate").g_exact;
    let g_warm = warm.best().expect("candidate").g_exact;
    assert_eq!(g_cold.to_bits(), g_warm.to_bits());
}
