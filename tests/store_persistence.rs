//! Integration tests of the persistent evaluation store's cross-run
//! contract: records written by one "job" (a store handle that is then
//! dropped — byte-wise indistinguishable from another process) must
//! replay a later identical run bit for bit with zero charged EM
//! seconds, shard collisions must be harmless, compaction must be
//! idempotent, and a torn shard tail must cost at most the torn record.

use isop::evalcache::EvalCache;
use isop::prelude::*;
use isop_em::simulator::AnalyticalSolver;
use isop_hpo::budget::Budget;
use isop_hpo::harmonica::HarmonicaConfig;
use isop_hpo::hyperband::HyperbandConfig;
use isop_store::{EvalRecord, ModelRecord, Store};
use std::path::PathBuf;
use std::sync::Arc;

const SEED: u64 = 3;

/// A unique scratch directory per test (tests share one process, so the
/// pid alone is not enough).
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("isop-store-it-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn smoke_config(threads: usize) -> IsopConfig {
    IsopConfig {
        harmonica: HarmonicaConfig {
            stages: 2,
            samples_per_stage: 120,
            top_monomials: 6,
            bits_per_stage: 8,
            ..HarmonicaConfig::default()
        },
        hyperband: HyperbandConfig {
            max_resource: 3.0,
            eta: 3.0,
        },
        gd_candidates: 4,
        gd_epochs: 25,
        cand_num: 3,
        parallelism: Parallelism::new(threads),
        ..IsopConfig::default()
    }
}

/// One seeded smoke run against a **fresh** store handle on `dir` — the
/// handle is opened and dropped inside, so consecutive calls only share
/// the bytes on disk, exactly like separate processes would. `persist`
/// false leaves the directory byte-identical (a flush folds the cross-job
/// tally into a meta record, which would make later runs read more bytes).
fn run_against_store(
    dir: &std::path::Path,
    threads: usize,
    persist: bool,
) -> (RunReport, isop::pipeline::IsopOutcome) {
    let space = isop::spaces::s1();
    let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
    let telemetry = Telemetry::enabled();
    let simulator = AnalyticalSolver::new().with_telemetry(telemetry.clone());
    let store = Arc::new(
        Store::open(dir)
            .expect("store opens")
            .with_telemetry(telemetry.clone()),
    );
    let cache = EvalCache::with_store(Arc::clone(&store));
    let outcome = IsopOptimizer::new(&space, &surrogate, &simulator, smoke_config(threads))
        .with_telemetry(telemetry.clone())
        .with_eval_cache(cache.clone())
        .run(
            isop::tasks::objective_for(TaskId::T1, vec![]),
            Budget::unlimited(),
            SEED,
        );
    if persist {
        cache.persist().expect("store flushes");
    }
    (telemetry.run_report(), outcome)
}

#[test]
fn fresh_handles_replay_a_previous_runs_work_bit_identically() {
    let dir = scratch_dir("replay");

    // Cold "job": pays for every accurate simulation, then disappears.
    let (cold_report, cold) = run_against_store(&dir, 2, true);
    assert!(cold_report.em_seconds_charged > 0.0, "cold run pays");
    assert_eq!(cold_report.counter("store.cross_job_hits"), 0);
    assert!(cold_report.counter("store.records_written") > 0);

    // Warm "jobs": fresh handles at two widths see the same bytes on
    // disk (read-only, so the second width replays the exact store state
    // the first one saw).
    let (warm_report, warm) = run_against_store(&dir, 1, false);
    let (wide_report, wide) = run_against_store(&dir, 4, false);

    assert_eq!(cold.candidates, warm.candidates, "bit-identical outcome");
    assert_eq!(cold.success, warm.success);
    assert_eq!(warm_report.em_seconds_charged, 0.0, "zero new EM charged");
    assert_eq!(
        (warm_report.em_seconds_charged + warm_report.em_seconds_saved).to_bits(),
        cold_report.em_seconds_charged.to_bits(),
        "the saved ledger replays the cold charge exactly"
    );
    assert!(warm_report.counter("store.cross_job_hits") > 0);
    assert_eq!(
        warm_report.counter("store.cross_job_hits"),
        warm_report.counter("em.cache.hits"),
        "every warm hit came from the store, not this job's own inserts"
    );

    // Thread width must not move a single warm counter: hydration and
    // probing happen in the roll-out's serial sections.
    assert_eq!(warm.candidates, wide.candidates);
    assert_eq!(warm_report.counters, wide_report.counters);
    assert_eq!(
        warm_report.em_seconds_saved.to_bits(),
        wide_report.em_seconds_saved.to_bits()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn single_shard_store_serves_colliding_spaces_correctly() {
    let dir = scratch_dir("collide");
    let record = |space_id: u64, level: u32, z: f64| EvalRecord {
        space_id,
        levels: vec![level, level + 1],
        metrics: [z, -0.5, 3.0],
        attempts: 1,
    };
    {
        // One shard: every space fingerprint collides into shard 0.
        let store = Store::open_with_shards(&dir, 1).expect("opens");
        store.append_eval(&record(0xAAAA, 1, 90.0));
        store.append_eval(&record(0xBBBB, 1, 91.0));
        store.append_eval(&record(0xAAAA, 2, 92.0));
        store.put_model(&ModelRecord {
            space_id: 0xAAAA,
            config_fp: 7,
            data_fp: 9,
            name: "m".into(),
            payload: serde::json::Value::Num(1.5),
        });
        store.flush().expect("flushes");
    }
    let store = Store::open(&dir).expect("reopens");
    assert_eq!(store.n_shards(), 1, "shard count adopted from the header");
    let a = store.load_evals(0xAAAA).expect("loads");
    let b = store.load_evals(0xBBBB).expect("loads");
    assert_eq!(a.len(), 2, "colliding space sees only its own records");
    assert_eq!(b.len(), 1);
    assert!(a.iter().all(|r| r.space_id == 0xAAAA));
    assert_eq!(b[0].metrics[0].to_bits(), 91.0f64.to_bits());
    let m = store
        .get_model(0xAAAA, 7, 9, "m")
        .expect("reads")
        .expect("model found despite eval records in the same shard");
    assert_eq!(m.payload, serde::json::Value::Num(1.5));
    assert!(store.get_model(0xBBBB, 7, 9, "m").expect("reads").is_none());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compaction_is_idempotent_and_keeps_the_last_write() {
    let dir = scratch_dir("compact");
    {
        let store = Store::open_with_shards(&dir, 2).expect("opens");
        for z in [90.0, 91.0, 92.0] {
            // Same identity three times: only the last may survive.
            store.append_eval(&EvalRecord {
                space_id: 0x1,
                levels: vec![4, 4],
                metrics: [z, -0.4, 2.0],
                attempts: 1,
            });
        }
        store.append_eval(&EvalRecord {
            space_id: 0x2,
            levels: vec![9],
            metrics: [100.0, -0.9, 1.0],
            attempts: 3,
        });
        store.flush().expect("flushes");
    }
    let store = Store::open(&dir).expect("reopens");
    let first = store.compact().expect("compacts");
    assert_eq!(first.records_before, 4);
    assert_eq!(first.records_after, 2);
    let stats_once = store.stats().expect("stats");

    let second = store.compact().expect("compacts again");
    assert_eq!(second.records_before, second.records_after, "idempotent");
    let stats_twice = store.stats().expect("stats");
    assert_eq!(stats_once.eval_records, stats_twice.eval_records);
    assert_eq!(stats_once.bytes, stats_twice.bytes, "byte-stable");

    let survivors = Store::open(&dir)
        .expect("fresh handle")
        .load_evals(0x1)
        .expect("loads");
    assert_eq!(survivors.len(), 1);
    assert_eq!(
        survivors[0].metrics[0].to_bits(),
        92.0f64.to_bits(),
        "last write wins"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_shard_tail_loses_only_the_torn_record() {
    let dir = scratch_dir("truncate");
    {
        let store = Store::open_with_shards(&dir, 1).expect("opens");
        for i in 0..5u32 {
            store.append_eval(&EvalRecord {
                space_id: 0x9,
                levels: vec![i],
                metrics: [90.0 + f64::from(i), -0.5, 2.0],
                attempts: 1,
            });
        }
        store.flush().expect("flushes");
    }
    // Tear the tail of the shard mid-record, as a crash would.
    let shard = dir.join("shard_000.bin");
    let bytes = std::fs::read(&shard).expect("shard readable");
    std::fs::write(&shard, &bytes[..bytes.len() - 7]).expect("truncates");

    let store = Store::open(&dir).expect("reopens after tear");
    let survivors = store.load_evals(0x9).expect("loads");
    assert_eq!(survivors.len(), 4, "only the torn record is lost");
    let stats = store.stats().expect("stats");
    assert_eq!(stats.skipped, 1, "the tear is counted, not silent");

    // Writing through the store heals the file: flush rewrites the shard
    // from the surviving records plus the new one.
    store.append_eval(&EvalRecord {
        space_id: 0x9,
        levels: vec![99],
        metrics: [95.0, -0.5, 2.0],
        attempts: 2,
    });
    store.flush().expect("flush heals");
    let healed = Store::open(&dir).expect("reopens healed");
    assert_eq!(healed.load_evals(0x9).expect("loads").len(), 5);
    for v in healed.verify().expect("verifies") {
        assert_eq!(v.skipped, 0, "no skips after healing");
    }
    std::fs::remove_dir_all(&dir).ok();
}
