//! Property-based tests on the objective machinery (`g`, `g_hat`, adaptive
//! weights): the contracts the optimizer depends on.

use isop::objective::{FomSpec, InputConstraint, Metric, Objective, OutputConstraint};
use isop::weights::{SampleRecord, WeightAdapter};
use proptest::prelude::*;

fn t3_like_objective() -> Objective {
    Objective::new(
        FomSpec {
            terms: vec![(Metric::L, 1.0)],
        },
        vec![
            OutputConstraint::band(Metric::Z, 85.0, 1.0),
            OutputConstraint::band(Metric::Next, 0.0, 0.05),
        ],
        vec![InputConstraint::new(
            vec![(0, 2.0), (1, 1.0)],
            20.0,
            "2W+S<=20",
        )],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// g is non-negative whenever the FoM terms are magnitudes, and equals
    /// the pure FoM exactly inside the feasible region.
    #[test]
    fn g_exact_decomposes(z in 80.0f64..90.0, l in -1.0f64..-0.1, next in -0.2f64..0.0,
                          w in 2.0f64..8.0, s in 2.0f64..6.0) {
        let obj = t3_like_objective();
        let metrics = [z, l, next];
        let values = vec![w, s];
        let g = obj.g_exact(&metrics, &values);
        prop_assert!(g >= 0.0);
        let feasible = (z - 85.0).abs() <= 1.0 && next.abs() <= 0.05 && 2.0 * w + s <= 20.0;
        if feasible {
            prop_assert!((g - l.abs()).abs() < 1e-9, "inside the region g == |L|");
        } else {
            prop_assert!(g >= l.abs() - 1e-9, "violations only add penalty");
        }
    }

    /// g_hat is finite, non-negative, and bounded by FoM + sum of weights *
    /// (2 per output constraint) + IC penalties.
    #[test]
    fn g_hat_is_bounded(z in 0.0f64..300.0, l in -5.0f64..0.0, next in -10.0f64..0.0) {
        let obj = t3_like_objective();
        let metrics = [z, l, next];
        let values = vec![5.0, 5.0];
        let gh = obj.g_hat(&metrics, &values);
        prop_assert!(gh.is_finite());
        prop_assert!(gh >= 0.0);
        let cap = l.abs() + 2.0 * obj.weights.oc.iter().sum::<f64>() + 1e-9;
        prop_assert!(gh <= cap, "g_hat {gh} above cap {cap}");
    }

    /// The smoothed constraint is monotone in the violation direction:
    /// moving further out of band never reduces the penalty.
    #[test]
    fn smoothed_is_monotone_outward(delta in 0.0f64..10.0, step in 0.01f64..2.0) {
        let c = OutputConstraint::band(Metric::Z, 85.0, 1.0);
        let near = c.smoothed(&[85.0 + delta, 0.0, 0.0], 1.0);
        let far = c.smoothed(&[85.0 + delta + step, 0.0, 0.0], 1.0);
        prop_assert!(far >= near - 1e-12);
    }

    /// Weight adaptation never increases a weight and never drops it to
    /// (or below) zero.
    #[test]
    fn weights_decay_monotonically_and_stay_positive(
        satisfied_fraction in 0.0f64..1.0,
        rounds in 1usize..20,
    ) {
        let mut obj = t3_like_objective();
        let adapter = WeightAdapter::default();
        let n = 20usize;
        let n_sat = (satisfied_fraction * n as f64) as usize;
        let batch: Vec<SampleRecord> = (0..n)
            .map(|i| SampleRecord {
                metrics: if i < n_sat {
                    [85.0, -0.4, -0.01]
                } else {
                    [95.0, -0.4, -2.0]
                },
                values: if i < n_sat { vec![5.0, 5.0] } else { vec![9.0, 9.0] },
            })
            .collect();
        let mut prev = obj.weights.clone();
        for _ in 0..rounds {
            adapter.update(&mut obj, &batch);
            for (w, p) in obj.weights.oc.iter().zip(&prev.oc) {
                prop_assert!(*w <= *p + 1e-12, "OC weight must not grow");
                prop_assert!(*w > 0.0, "OC weight must stay positive");
            }
            for (w, p) in obj.weights.ic.iter().zip(&prev.ic) {
                prop_assert!(*w <= *p + 1e-12);
                prop_assert!(*w > 0.0);
            }
            prev = obj.weights.clone();
        }
    }

    /// FoM improvement (Eq. 12) is antisymmetric around equality and
    /// positive exactly when ISOP+ is better.
    #[test]
    fn improvement_sign_correct(a in 0.01f64..10.0, b in 0.01f64..10.0) {
        let impv = isop::experiment::fom_improvement(a, b);
        if a > b {
            prop_assert!(impv > 0.0);
        } else if a < b {
            prop_assert!(impv < 0.0);
        } else {
            prop_assert!(impv.abs() < 1e-12);
        }
    }
}
