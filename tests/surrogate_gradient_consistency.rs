//! Cross-crate consistency: the surrogates' analytic input gradients must
//! agree with finite differences of their own predictions, and the objective
//! gradient must descend `g_hat` — the contract the local-exploration stage
//! rests on.

use isop::data::generate_dataset;
use isop::prelude::*;
use isop_em::simulator::AnalyticalSolver;
use isop_ml::linalg::Matrix;
use isop_ml::models::{Cnn1d, Cnn1dConfig, Mlp, MlpConfig};

fn dataset(n: usize, seed: u64) -> isop_ml::dataset::Dataset {
    generate_dataset(&isop::spaces::s1(), n, &AnalyticalSolver::new(), seed).expect("dataset")
}

fn check_jacobian(surrogate: &dyn Surrogate, x: &[f64]) {
    let jac = surrogate
        .jacobian(x)
        .expect("differentiable")
        .expect("fitted");
    assert_eq!((jac.rows(), jac.cols()), (3, x.len()));
    let h = 1e-5;
    for c in [0usize, 5, 10, 14] {
        let mut hi = x.to_vec();
        let mut lo = x.to_vec();
        hi[c] += h;
        lo[c] -= h;
        let ph = surrogate.predict(&hi).expect("ok");
        let pl = surrogate.predict(&lo).expect("ok");
        for r in 0..3 {
            let fd = (ph[r] - pl[r]) / (2.0 * h);
            let an = jac[(r, c)];
            assert!(
                (fd - an).abs() <= 1e-3 * (1.0 + fd.abs().max(an.abs())),
                "metric {r} / param {c}: analytic {an} vs fd {fd}"
            );
        }
    }
}

#[test]
fn mlp_surrogate_jacobian_consistent() {
    let data = dataset(600, 3);
    let s = NeuralSurrogate::fit(
        Mlp::new(MlpConfig {
            hidden: vec![32, 32],
            epochs: 20,
            dropout: 0.0,
            ..MlpConfig::default()
        }),
        &data,
    )
    .expect("trains");
    check_jacobian(&s, data.x.row(0));
    check_jacobian(&s, data.x.row(100));
}

#[test]
fn cnn_surrogate_jacobian_consistent() {
    let data = dataset(400, 4);
    let s = NeuralSurrogate::fit(
        Cnn1d::new(Cnn1dConfig {
            expand: 64,
            channels: 8,
            conv_channels: 8,
            head: 24,
            epochs: 15,
            dropout: 0.0,
            ..Cnn1dConfig::default()
        }),
        &data,
    )
    .expect("trains");
    check_jacobian(&s, data.x.row(0));
}

/// Following `-grad_g_hat` for a few small steps must not increase `g_hat`
/// (descent property), for the oracle surrogate on T1.
#[test]
fn objective_gradient_descends_g_hat() {
    let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
    let objective = isop::tasks::objective_for(TaskId::T1, vec![]);
    let space = isop::spaces::s1();

    let start: Vec<f64> = isop::manual::ISOP_T1_S1_VECTOR.to_vec();
    let mut x = start;
    // Perturb off the optimum so there is room to descend.
    x[0] = 4.0;
    x[5] = 7.0;
    let eval = |x: &[f64]| {
        let m = surrogate.predict(x).expect("valid");
        objective.g_hat(&m, x)
    };
    let mut g_prev = eval(&x);
    let bounds = space.bounds();
    for _ in 0..8 {
        let m = surrogate.predict(&x).expect("ok");
        let jac: Matrix = surrogate.jacobian(&x).expect("fd").expect("ok");
        let grad = objective.grad_g_hat(&m, &jac, &x);
        // Normalized small step.
        let norm = grad.iter().map(|g| g * g).sum::<f64>().sqrt().max(1e-12);
        for ((xi, g), (lo, hi)) in x.iter_mut().zip(&grad).zip(&bounds) {
            *xi = (*xi - 0.02 * (hi - lo) * g / norm * (hi - lo).signum()).clamp(*lo, *hi);
        }
        let g_now = eval(&x);
        assert!(
            g_now <= g_prev + 5e-3,
            "gradient step increased g_hat: {g_prev} -> {g_now}"
        );
        g_prev = g_now;
    }
}
