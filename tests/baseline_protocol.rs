//! Integration tests of the Table IV/V comparison protocol: budget matching,
//! sample accounting, and the relative behaviour of ISOP+ vs SA vs BO on a
//! shared surrogate.

use isop::experiment::{ExperimentContext, MatchMode, TrialStats};
use isop::prelude::*;
use isop_em::simulator::AnalyticalSolver;

fn context<'a>(
    space: &'a isop::params::ParamSpace,
    surrogate: &'a OracleSurrogate<AnalyticalSolver>,
    simulator: &'a AnalyticalSolver,
) -> ExperimentContext<'a> {
    let mut cfg = IsopConfig::default();
    cfg.harmonica.stages = 2;
    cfg.harmonica.samples_per_stage = 120;
    cfg.gd_epochs = 20;
    ExperimentContext {
        space,
        surrogate,
        simulator,
        isop_config: cfg,
        n_trials: 2,
        seed: 77,
        telemetry: isop_telemetry::Telemetry::disabled(),
        eval_cache: isop::evalcache::EvalCache::disabled(),
        surrogate_memo: isop::evalcache::SurrogateMemo::disabled(),
    }
}

#[test]
fn sample_matched_sa_respects_budget() {
    let space = isop::spaces::s1();
    let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
    let simulator = AnalyticalSolver::new();
    let ctx = context(&space, &surrogate, &simulator);
    let objective = isop::tasks::objective_for(TaskId::T1, vec![]);
    let cell = ctx.run_isop(&objective);
    let (isop_results, avg_samples, avg_algo) =
        (cell.results, cell.avg_samples, cell.avg_algo_seconds);
    assert!(cell.degraded.is_empty(), "no faults injected here");
    assert!(!isop_results.is_empty());
    assert!(
        avg_samples > 100.0,
        "ISOP+ must observe samples: {avg_samples}"
    );

    let sa = ctx.run_sa(&objective, MatchMode::Samples, avg_samples, avg_algo);
    assert!(!sa.is_empty(), "SA must produce verified results");
    for r in &sa {
        // Valid-sample accounting: within ~1 of the target (the final
        // in-flight evaluation may overshoot by one).
        assert!(
            (r.samples_seen as f64) <= avg_samples + 2.0,
            "SA-2 overshot the sample budget: {} vs {avg_samples}",
            r.samples_seen
        );
    }
}

#[test]
fn runtime_matched_bo_observes_fewer_samples_than_isop() {
    let space = isop::spaces::s1();
    let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
    let simulator = AnalyticalSolver::new();
    let ctx = context(&space, &surrogate, &simulator);
    let objective = isop::tasks::objective_for(TaskId::T1, vec![]);
    let cell = ctx.run_isop(&objective);
    let (avg_samples, avg_algo) = (cell.avg_samples, cell.avg_algo_seconds);

    let bo = ctx.run_bo(
        &objective,
        MatchMode::Samples,
        avg_samples.min(120.0),
        avg_algo,
    );
    assert!(!bo.is_empty());
    for r in &bo {
        assert!(r.samples_seen <= 120 + 1);
        assert!(r.metrics[0].is_finite());
    }
}

#[test]
fn all_methods_verify_with_real_simulation() {
    let space = isop::spaces::s1();
    let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
    let simulator = AnalyticalSolver::new();
    let ctx = context(&space, &surrogate, &simulator);
    let objective = isop::tasks::objective_for(TaskId::T2, vec![]);
    let cell = ctx.run_isop(&objective);
    let (isop_results, s, a) = (cell.results, cell.avg_samples, cell.avg_algo_seconds);
    let sa = ctx.run_sa(&objective, MatchMode::Samples, s, a);
    let bo = ctx.run_bo(&objective, MatchMode::Samples, 100.0, a);

    for r in isop_results.iter().chain(&sa).chain(&bo) {
        // Verified metrics are physical.
        assert!(r.metrics[0] > 20.0 && r.metrics[0] < 300.0);
        assert!(r.metrics[1] < 0.0);
        // Runtime includes the accounted EM batch: up to three simulations
        // run in parallel and cost the wall-clock of a single run
        // (PAPER_EM_BATCH_SECONDS / 3 ~= 15.2 s per batch).
        assert!(
            r.runtime_seconds >= 15.0,
            "EM accounting missing: {}",
            r.runtime_seconds
        );
    }
}

#[test]
fn aggregation_matches_trial_data() {
    let space = isop::spaces::s1();
    let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
    let simulator = AnalyticalSolver::new();
    let ctx = context(&space, &surrogate, &simulator);
    let objective = isop::tasks::objective_for(TaskId::T1, vec![]);
    let results = ctx.run_isop(&objective).results;
    let stats = TrialStats::aggregate("ISOP+", &results, 85.0);
    assert_eq!(stats.trials, results.len());
    let manual_fom: f64 = results.iter().map(|r| r.fom).sum::<f64>() / results.len() as f64;
    assert!((stats.fom - manual_fom).abs() < 1e-12);
    assert!(stats.successes <= stats.trials);
}
