//! Bit-identity of the data-parallel training engine.
//!
//! The determinism contract (DESIGN.md §9): for every model in the zoo,
//! `fit_with` at `threads = 1` and `threads = N` must produce byte-for-byte
//! identical models — all RNG is drawn serially before parallel sections,
//! chunk boundaries depend only on the data size, and floating-point
//! partials are reduced in input order. These tests pin that contract per
//! model and then end-to-end through the pipeline.

use isop::data::generate_mixed_dataset;
use isop::exec::Parallelism;
use isop::prelude::*;
use isop_em::simulator::AnalyticalSolver;
use isop_hpo::budget::Budget;
use isop_ml::dataset::Dataset;
use isop_ml::linalg::Matrix;
use isop_ml::models::{
    Cnn1d, Cnn1dConfig, DecisionTree, Ensemble, GradientBoosting, Mlp, MlpConfig, RandomForest,
    TreeConfig, XgbRegressor,
};
use isop_ml::train::TrainContext;
use isop_ml::Regressor;
use isop_telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic synthetic regression set with three outputs.
///
/// Half of the features are snapped to a coarse grid so tree splits see
/// plenty of tied values — the case where an order-sensitive split scan
/// would diverge first.
fn synth(rows: usize, seed: u64) -> Dataset {
    const D: usize = 6;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut xs = Vec::with_capacity(rows);
    let mut ys = Vec::with_capacity(rows);
    for _ in 0..rows {
        let mut row = [0.0f64; D];
        for (c, v) in row.iter_mut().enumerate() {
            let raw = rng.gen::<f64>() * 2.0 - 1.0;
            *v = if c % 2 == 0 {
                (raw * 5.0).round() / 5.0
            } else {
                raw
            };
        }
        let s: f64 = row.iter().sum();
        let y0 = (2.0 * row[0]).sin() + row[1] * row[2] + 0.1 * s;
        let y1 = row[3].cos() - 0.5 * row[4] * row[4];
        let y2 = row[5] + 0.3 * (3.0 * row[0]).cos() * row[1];
        xs.push(row.to_vec());
        ys.push(vec![y0, y1, y2]);
    }
    Dataset::new(Matrix::from_rows(&xs), Matrix::from_rows(&ys)).expect("valid")
}

/// Fits twin models at 1 and `threads` workers and asserts the predictions
/// on the training inputs are exactly equal (`Matrix` equality is exact
/// `f64` comparison — no tolerance).
fn assert_bit_identical(
    name: &str,
    mut serial: Box<dyn Regressor>,
    mut wide: Box<dyn Regressor>,
    data: &Dataset,
    threads: usize,
) {
    serial
        .fit_with(data, &TrainContext::new(Parallelism::new(1)))
        .expect("serial fit");
    wide.fit_with(data, &TrainContext::new(Parallelism::new(threads)))
        .expect("parallel fit");
    let a = serial.predict(&data.x).expect("serial predict");
    let b = wide.predict(&data.x).expect("parallel predict");
    assert_eq!(
        a, b,
        "{name}: fit at {threads} threads diverged from the serial fit"
    );
}

#[test]
fn decision_tree_identical_across_widths() {
    let data = synth(1500, 1);
    let make = || Box::new(DecisionTree::new(TreeConfig::default(), 5));
    assert_bit_identical("DecisionTree", make(), make(), &data, 8);
}

#[test]
fn random_forest_identical_across_widths() {
    let data = synth(900, 2);
    let cfg = TreeConfig {
        max_depth: 8,
        ..TreeConfig::default()
    };
    let make = || Box::new(RandomForest::new(12, cfg, 3));
    assert_bit_identical("RandomForest", make(), make(), &data, 8);
    // An odd width exercises uneven work distribution over the 12 trees.
    assert_bit_identical("RandomForest", make(), make(), &data, 5);
}

#[test]
fn gradient_boosting_identical_across_widths() {
    let data = synth(900, 3);
    let cfg = TreeConfig {
        max_depth: 3,
        ..TreeConfig::default()
    };
    let make = || Box::new(GradientBoosting::new(25, 0.15, cfg, 0x6272));
    assert_bit_identical("GradientBoosting", make(), make(), &data, 8);
}

#[test]
fn xgb_identical_across_widths() {
    let data = synth(900, 4);
    let make = || Box::new(XgbRegressor::new(30, 0.2, 4, 1.0, 0.0));
    assert_bit_identical("XGBoost", make(), make(), &data, 8);
}

#[test]
fn mlp_with_dropout_identical_across_widths() {
    let data = synth(400, 5);
    let make = || {
        Box::new(Mlp::new(MlpConfig {
            hidden: vec![32, 32],
            epochs: 10,
            batch_size: 64,
            dropout: 0.1,
            seed: 7,
            ..MlpConfig::default()
        }))
    };
    assert_bit_identical("Mlp", make(), make(), &data, 8);
    // Odd width: the 64-row batch splits into four 16-row chunks that do
    // not divide evenly over three workers.
    assert_bit_identical("Mlp", make(), make(), &data, 3);
}

#[test]
fn cnn_with_dropout_identical_across_widths() {
    let data = synth(240, 6);
    let make = || {
        Box::new(Cnn1d::new(Cnn1dConfig {
            expand: 64,
            channels: 8,
            conv_channels: 8,
            kernel: 3,
            head: 24,
            epochs: 5,
            batch_size: 32,
            dropout: 0.1,
            seed: 3,
            ..Cnn1dConfig::default()
        }))
    };
    assert_bit_identical("Cnn1d", make(), make(), &data, 8);
}

#[test]
fn ensemble_identical_across_widths() {
    let data = synth(300, 7);
    let member = |seed| {
        Mlp::new(MlpConfig {
            hidden: vec![24],
            epochs: 8,
            dropout: 0.05,
            seed,
            ..MlpConfig::default()
        })
    };
    let make = || Box::new(Ensemble::new(vec![member(1), member(2), member(3)]));
    assert_bit_identical("Ensemble<Mlp>", make(), make(), &data, 8);
}

/// `fit` (no context) must stay the exact serial path: a model trained via
/// the bare trait method equals one trained with an explicit 1-thread
/// context.
#[test]
fn bare_fit_matches_serial_context() {
    let data = synth(400, 8);
    let cfg = MlpConfig {
        hidden: vec![24, 24],
        epochs: 8,
        dropout: 0.1,
        seed: 11,
        ..MlpConfig::default()
    };
    let mut bare = Mlp::new(cfg.clone());
    bare.fit(&data).expect("fit");
    let mut ctx = Mlp::new(cfg);
    ctx.fit_with(&data, &TrainContext::serial()).expect("fit");
    assert_eq!(
        bare.predict(&data.x).expect("ok"),
        ctx.predict(&data.x).expect("ok"),
        "Regressor::fit must delegate to the serial context unchanged"
    );
}

/// End-to-end: a surrogate trained at 1 vs 4 threads drives the pipeline to
/// identical candidates and identical telemetry counters (`train.chunks`
/// included — chunk counts depend only on data size, never on width).
#[test]
fn pipeline_identical_when_surrogate_trains_parallel() {
    let sim = AnalyticalSolver::new();
    let data = generate_mixed_dataset(
        &isop::spaces::training_space(),
        &isop::spaces::s1(),
        1200,
        0.5,
        &sim,
        11,
    )
    .expect("dataset");
    let mlp = || {
        Mlp::new(MlpConfig {
            hidden: vec![32, 32],
            epochs: 10,
            batch_size: 64,
            dropout: 0.05,
            lr: 2e-3,
            ..MlpConfig::default()
        })
    };
    let mut cfg = IsopConfig::default();
    cfg.harmonica.stages = 2;
    cfg.harmonica.samples_per_stage = 120;
    cfg.gd_epochs = 20;
    cfg.gd_candidates = 4;

    let run = |threads: usize| {
        let tele = Telemetry::enabled();
        let zoo =
            isop::surrogate::ModelZoo::new(Parallelism::new(threads)).with_telemetry(tele.clone());
        let surrogate = zoo.fit_neural(mlp(), &data).expect("training converges");
        let space = isop::spaces::s1();
        let optimizer =
            IsopOptimizer::new(&space, &surrogate, &sim, cfg.clone()).with_telemetry(tele.clone());
        let outcome = optimizer.run(
            isop::tasks::objective_for(TaskId::T1, vec![]),
            Budget::unlimited(),
            21,
        );
        (outcome.candidates, tele.run_report())
    };

    let (cand_serial, report_serial) = run(1);
    let (cand_par, report_par) = run(4);
    assert_eq!(
        cand_serial, cand_par,
        "pipeline candidates must not depend on training thread width"
    );
    assert_eq!(
        report_serial.counters, report_par.counters,
        "telemetry counters must not depend on training thread width"
    );
    assert!(
        report_par.counter("train.chunks") > 0,
        "the data-parallel engine must report chunk counts"
    );
}
