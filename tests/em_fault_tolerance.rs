//! Integration tests of the fault-tolerant roll-out contract: the seeded
//! fault layer is bit-transparent at rate 0, faulted outcomes and every
//! fault counter are independent of the thread width (faults are keyed by
//! design identity, never call order), top-up keeps the accurate simulator
//! fed to `cand_num` successes, retries charge simulated time to the EM
//! ledger, cache hits bypass the retry path entirely, and a total outage
//! resolves as `all_simulations_failed` instead of an ordinary infeasible
//! trial.

use isop::evalcache::{EvalCache, SurrogateMemo};
use isop::prelude::*;
use isop_em::fault::{PermanentFault, TransientFault};
use isop_em::simulator::{AnalyticalSolver, EmSimulator, SimulationResult, PAPER_EM_BATCH_SECONDS};
use isop_em::stackup::DiffStripline;
use isop_hpo::budget::Budget;
use isop_hpo::harmonica::HarmonicaConfig;
use isop_hpo::hyperband::HyperbandConfig;
use std::collections::HashMap;
use std::sync::Mutex;

const SEED: u64 = 3;
const FAULT_SEED: u64 = 2;

fn smoke_config(threads: usize) -> IsopConfig {
    IsopConfig {
        harmonica: HarmonicaConfig {
            stages: 2,
            samples_per_stage: 120,
            top_monomials: 6,
            bits_per_stage: 8,
            ..HarmonicaConfig::default()
        },
        hyperband: HyperbandConfig {
            max_resource: 3.0,
            eta: 3.0,
        },
        gd_candidates: 4,
        gd_epochs: 25,
        cand_num: 3,
        parallelism: Parallelism::new(threads),
        ..IsopConfig::default()
    }
}

fn run_with(
    simulator: &dyn EmSimulator,
    threads: usize,
    telemetry: &Telemetry,
    cache: &EvalCache,
) -> isop::pipeline::IsopOutcome {
    let space = isop::spaces::s1();
    let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
    IsopOptimizer::new(&space, &surrogate, simulator, smoke_config(threads))
        .with_telemetry(telemetry.clone())
        .with_eval_cache(cache.clone())
        .run(
            isop::tasks::objective_for(TaskId::T1, vec![]),
            Budget::unlimited(),
            SEED,
        )
}

/// A deterministic flaky simulator: every distinct design fails its first
/// `fail_first` attempts with a transient fault, then succeeds. Keyed by
/// the design's parameter bits (like the fault injector), so the behaviour
/// is identical at any thread width.
struct FailNth<S> {
    inner: S,
    fail_first: u32,
    seen: Mutex<HashMap<Vec<u64>, u32>>,
}

impl<S> FailNth<S> {
    fn new(inner: S, fail_first: u32) -> Self {
        Self {
            inner,
            fail_first,
            seen: Mutex::new(HashMap::new()),
        }
    }
}

impl<S: EmSimulator> EmSimulator for FailNth<S> {
    fn simulate(&self, layer: &DiffStripline) -> Result<SimulationResult, SimError> {
        let key: Vec<u64> = layer.to_vector().iter().map(|v| v.to_bits()).collect();
        let attempt = {
            let mut seen = self.seen.lock().expect("seen lock");
            let n = seen.entry(key).or_insert(0);
            *n += 1;
            *n
        };
        if attempt <= self.fail_first {
            return Err(SimError::Transient(TransientFault::Timeout));
        }
        self.inner.simulate(layer)
    }

    fn nominal_seconds(&self) -> f64 {
        self.inner.nominal_seconds()
    }

    fn name(&self) -> &str {
        "fail-nth"
    }
}

/// A simulator where every design is permanently unsolvable.
struct AlwaysDoomed;

impl EmSimulator for AlwaysDoomed {
    fn simulate(&self, _layer: &DiffStripline) -> Result<SimulationResult, SimError> {
        Err(SimError::Permanent(PermanentFault::Unsolvable))
    }

    fn nominal_seconds(&self) -> f64 {
        PAPER_EM_BATCH_SECONDS / 3.0
    }

    fn name(&self) -> &str {
        "doomed"
    }
}

#[test]
fn zero_rate_fault_layer_is_bit_transparent() {
    let plain_tele = Telemetry::enabled();
    let plain_sim = AnalyticalSolver::new().with_telemetry(plain_tele.clone());
    let plain = run_with(&plain_sim, 2, &plain_tele, &EvalCache::disabled());

    let zero_tele = Telemetry::enabled();
    let zero_sim = FaultInjector::new(
        AnalyticalSolver::new().with_telemetry(zero_tele.clone()),
        FaultConfig::disabled(FAULT_SEED),
    )
    .with_telemetry(zero_tele.clone());
    let zero = run_with(&zero_sim, 2, &zero_tele, &EvalCache::disabled());

    assert_eq!(plain.candidates, zero.candidates);
    assert_eq!(plain.success, zero.success);
    assert_eq!(plain.em_seconds.to_bits(), zero.em_seconds.to_bits());
    assert_eq!(
        plain.em_seconds_saved.to_bits(),
        zero.em_seconds_saved.to_bits()
    );
    assert_eq!(zero.resolution, RolloutResolution::Full);
    assert_eq!(zero.em_retries, 0);
    assert_eq!(zero.em_failures_transient, 0);
    assert_eq!(zero.em_failures_permanent, 0);
    assert_eq!(zero.em_topped_up, 0);
    for c in Counter::ALL {
        assert_eq!(
            plain_tele.counter(c),
            zero_tele.counter(c),
            "rate-0 fault layer moved counter {}",
            c.name()
        );
    }
}

#[test]
fn faulted_outcome_and_counters_bit_identical_across_thread_widths() {
    let config = FaultConfig {
        transient_rate: 0.35,
        permanent_rate: 0.30,
        seed: FAULT_SEED,
    };
    let run_at = |threads: usize| {
        let telemetry = Telemetry::enabled();
        let simulator = FaultInjector::new(
            AnalyticalSolver::new().with_telemetry(telemetry.clone()),
            config,
        )
        .with_telemetry(telemetry.clone());
        let outcome = run_with(&simulator, threads, &telemetry, &EvalCache::disabled());
        (outcome, telemetry)
    };
    let (serial, serial_tele) = run_at(1);
    let (wide, wide_tele) = run_at(4);

    assert_eq!(serial.candidates, wide.candidates);
    assert_eq!(serial.resolution, wide.resolution);
    assert_eq!(serial.em_retries, wide.em_retries);
    assert_eq!(serial.em_failures_transient, wide.em_failures_transient);
    assert_eq!(serial.em_failures_permanent, wide.em_failures_permanent);
    assert_eq!(serial.em_topped_up, wide.em_topped_up);
    assert_eq!(serial.em_seconds.to_bits(), wide.em_seconds.to_bits());
    for c in Counter::ALL {
        assert_eq!(
            serial_tele.counter(c),
            wide_tele.counter(c),
            "counter {} diverged between 1 and 4 threads",
            c.name()
        );
    }
    // The fixture actually exercises the fault path.
    assert!(serial.em_retries > 0);
    assert!(serial.em_failures_transient > 0);
    // Injected failures keep the attempt ledger closed.
    assert_eq!(
        serial_tele.counter(Counter::EmSimAttempted),
        serial_tele.counter(Counter::EmSimSucceeded) + serial_tele.counter(Counter::EmSimFailed)
    );
}

#[test]
fn top_up_restores_full_rollout_after_permanent_failure() {
    let telemetry = Telemetry::enabled();
    let simulator = FaultInjector::new(
        AnalyticalSolver::new().with_telemetry(telemetry.clone()),
        FaultConfig {
            transient_rate: 0.35,
            permanent_rate: 0.30,
            seed: FAULT_SEED,
        },
    )
    .with_telemetry(telemetry.clone());
    let outcome = run_with(&simulator, 2, &telemetry, &EvalCache::disabled());

    // A design was permanently lost, yet the surplus surrogate-ranked pool
    // refilled the roll-out to the full cand_num.
    assert!(outcome.em_failures_permanent > 0);
    assert!(outcome.em_topped_up > 0);
    assert_eq!(outcome.candidates.len(), smoke_config(2).cand_num);
    assert_eq!(outcome.resolution, RolloutResolution::Full);
}

#[test]
fn retries_rescue_flaky_designs_and_charge_simulated_time() {
    let plain_tele = Telemetry::enabled();
    let plain_sim = AnalyticalSolver::new().with_telemetry(plain_tele.clone());
    let plain = run_with(&plain_sim, 2, &plain_tele, &EvalCache::disabled());

    // Every design fails twice then succeeds; the default budget of three
    // attempts rescues all of them.
    let telemetry = Telemetry::enabled();
    let simulator = FailNth::new(AnalyticalSolver::new().with_telemetry(telemetry.clone()), 2);
    let flaky = run_with(&simulator, 2, &telemetry, &EvalCache::disabled());

    assert_eq!(flaky.candidates.len(), plain.candidates.len());
    for (f, p) in flaky.candidates.iter().zip(&plain.candidates) {
        assert_eq!(f.values, p.values);
        assert_eq!(f.g_exact.to_bits(), p.g_exact.to_bits());
        assert_eq!(f.attempts, 3);
    }
    let n = flaky.candidates.len() as u64;
    assert_eq!(flaky.em_retries, 2 * n);
    assert_eq!(flaky.em_failures_transient, 2 * n);
    assert_eq!(flaky.resolution, RolloutResolution::Full);

    // Async charging: the three designs retry *together*, so the whole
    // roll-out is three full batches (attempt rounds) at one nominal each
    // — no per-failure surcharge, no backoff billing. The ledger must be
    // bit-exactly three nominals…
    let nominal = plain_sim.nominal_seconds();
    assert_eq!(flaky.em_seconds.to_bits(), (3.0 * nominal).to_bits());

    // …and strictly below what the synchronous wave schedule would have
    // charged for the same candidates (per-failure nominals plus the
    // exponential backoff before attempts two and three).
    let policy = RetryPolicy::default();
    let mut sync_expected = plain.em_seconds;
    for _ in 0..n {
        sync_expected += 2.0 * nominal + policy.total_backoff(3);
    }
    assert!(
        flaky.em_seconds < sync_expected,
        "async ledger {} must undercut the synchronous schedule {}",
        flaky.em_seconds,
        sync_expected
    );
    let mut sync_cfg = smoke_config(2);
    sync_cfg.schedule = isop::scheduler::RolloutSchedule::Synchronous;
    let sync_tele = Telemetry::enabled();
    let sync_sim = FailNth::new(AnalyticalSolver::new().with_telemetry(sync_tele.clone()), 2);
    let space = isop::spaces::s1();
    let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
    let sync = IsopOptimizer::new(&space, &surrogate, &sync_sim, sync_cfg)
        .with_telemetry(sync_tele.clone())
        .run(
            isop::tasks::objective_for(TaskId::T1, vec![]),
            Budget::unlimited(),
            SEED,
        );
    assert_eq!(sync.candidates, flaky.candidates, "equal candidate quality");
    assert_eq!(sync.em_seconds.to_bits(), sync_expected.to_bits());
}

#[test]
fn warm_cache_replay_bypasses_the_retry_path() {
    let cache = EvalCache::new();
    let cold_tele = Telemetry::enabled();
    let cold_sim = FailNth::new(AnalyticalSolver::new().with_telemetry(cold_tele.clone()), 2);
    let cold = run_with(&cold_sim, 2, &cold_tele, &cache);
    assert_eq!(cold.em_retries, 2 * cold.candidates.len() as u64);

    // Fresh simulator state and telemetry: the warm run must be served
    // entirely from cache — attempt counts replayed, no retries, no
    // backoff, the whole batch charge landing in the saved ledger.
    let warm_tele = Telemetry::enabled();
    let warm_sim = FailNth::new(AnalyticalSolver::new().with_telemetry(warm_tele.clone()), 2);
    let warm = run_with(&warm_sim, 2, &warm_tele, &cache);

    assert_eq!(warm.candidates, cold.candidates);
    assert!(warm
        .candidates
        .iter()
        .all(|candidate| candidate.attempts == 3));
    assert_eq!(warm.em_retries, 0);
    assert_eq!(warm.em_failures_transient, 0);
    assert_eq!(warm_tele.counter(Counter::EmRetries), 0);
    assert_eq!(warm.em_seconds, 0.0);
    assert!(warm.em_seconds_saved > 0.0);
    assert_eq!(warm.resolution, RolloutResolution::Full);
}

#[test]
fn total_outage_resolves_as_all_simulations_failed() {
    let telemetry = Telemetry::enabled();
    let outcome = run_with(&AlwaysDoomed, 2, &telemetry, &EvalCache::disabled());
    assert!(outcome.candidates.is_empty());
    assert!(!outcome.success);
    assert_eq!(outcome.resolution, RolloutResolution::AllSimulationsFailed);
    assert!(outcome.em_failures_permanent > 0);

    // The experiment harness surfaces the outage as a degraded trial
    // instead of silently recording an infeasible result.
    let space = isop::spaces::s1();
    let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
    let simulator = AlwaysDoomed;
    let ctx = isop::experiment::ExperimentContext {
        space: &space,
        surrogate: &surrogate,
        simulator: &simulator,
        isop_config: smoke_config(2),
        n_trials: 1,
        seed: SEED,
        telemetry: Telemetry::disabled(),
        eval_cache: EvalCache::disabled(),
        surrogate_memo: SurrogateMemo::disabled(),
    };
    let cell = ctx.run_isop(&isop::tasks::objective_for(TaskId::T1, vec![]));
    assert!(cell.results.is_empty());
    assert_eq!(
        cell.degraded,
        vec![(0, RolloutResolution::AllSimulationsFailed)]
    );
}
