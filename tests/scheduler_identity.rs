//! Integration tests of the async roll-out scheduler's determinism
//! contract: batch composition is a pure function of design identity and
//! the logical tick clock, so candidates, both EM ledgers, and every
//! telemetry counter are bit-identical at any thread width — with faults
//! on; a fault-free async roll-out delivers the synchronous schedule's
//! candidate set at a bit-identical charge; a warm-cache replay occupies
//! zero live batch slots; a ragged final batch still charges a full
//! nominal while booking its empty slots as slack; and interleaved
//! experiment trials pack cross-trial batches without changing any
//! trial's winner.

use isop::evalcache::{EvalCache, SurrogateMemo};
use isop::prelude::*;
use isop_em::simulator::{AnalyticalSolver, EmSimulator};
use isop_hpo::budget::Budget;
use isop_hpo::harmonica::HarmonicaConfig;
use isop_hpo::hyperband::HyperbandConfig;

const SEED: u64 = 3;
const FAULT_SEED: u64 = 2;

fn smoke_config(threads: usize) -> IsopConfig {
    IsopConfig {
        harmonica: HarmonicaConfig {
            stages: 2,
            samples_per_stage: 120,
            top_monomials: 6,
            bits_per_stage: 8,
            ..HarmonicaConfig::default()
        },
        hyperband: HyperbandConfig {
            max_resource: 3.0,
            eta: 3.0,
        },
        gd_candidates: 4,
        gd_epochs: 25,
        cand_num: 3,
        parallelism: Parallelism::new(threads),
        ..IsopConfig::default()
    }
}

fn run_with(
    simulator: &dyn EmSimulator,
    config: IsopConfig,
    telemetry: &Telemetry,
    cache: &EvalCache,
) -> isop::pipeline::IsopOutcome {
    let space = isop::spaces::s1();
    let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
    IsopOptimizer::new(&space, &surrogate, simulator, config)
        .with_telemetry(telemetry.clone())
        .with_eval_cache(cache.clone())
        .run(
            isop::tasks::objective_for(TaskId::T1, vec![]),
            Budget::unlimited(),
            SEED,
        )
}

/// With faults on, retry chains and top-ups flow through the batch stream
/// — and the whole thing must still be bit-identical at 1 vs 4 threads:
/// candidates, both ledgers, and every counter including the three
/// `em.sched.*` gauges.
#[test]
fn faulted_async_schedule_is_bit_identical_across_thread_widths() {
    let fault = FaultConfig {
        transient_rate: 0.35,
        permanent_rate: 0.30,
        seed: FAULT_SEED,
    };
    let run_at = |threads: usize| {
        let telemetry = Telemetry::enabled();
        let simulator = FaultInjector::new(
            AnalyticalSolver::new().with_telemetry(telemetry.clone()),
            fault,
        )
        .with_telemetry(telemetry.clone());
        let outcome = run_with(
            &simulator,
            smoke_config(threads),
            &telemetry,
            &EvalCache::disabled(),
        );
        (outcome, telemetry)
    };
    let (serial, serial_tele) = run_at(1);
    let (wide, wide_tele) = run_at(4);

    assert_eq!(serial.candidates, wide.candidates);
    assert_eq!(serial.resolution, wide.resolution);
    assert_eq!(serial.em_seconds.to_bits(), wide.em_seconds.to_bits());
    assert_eq!(
        serial.em_seconds_saved.to_bits(),
        wide.em_seconds_saved.to_bits()
    );
    for c in Counter::ALL {
        assert_eq!(
            serial_tele.counter(c),
            wide_tele.counter(c),
            "counter {} diverged between 1 and 4 threads",
            c.name()
        );
    }
    // The scenario exercised the scheduler for real: retry chains and
    // top-up draws re-entered the batch stream across multiple ticks.
    assert!(serial.em_retries > 0);
    assert!(serial.em_topped_up > 0);
    assert!(serial_tele.counter(Counter::EmSchedBatches) > 1);
}

/// At fault rate zero the async stream degenerates to the synchronous
/// schedule: same candidate set, same attempt counts, and a bit-identical
/// charged ledger (full batches, no surcharge on either side).
#[test]
fn fault_free_async_matches_synchronous_schedule_bit_exactly() {
    let run_sched = |schedule: isop::scheduler::RolloutSchedule| {
        let telemetry = Telemetry::enabled();
        let simulator = AnalyticalSolver::new().with_telemetry(telemetry.clone());
        let config = IsopConfig {
            schedule,
            ..smoke_config(2)
        };
        let outcome = run_with(&simulator, config, &telemetry, &EvalCache::disabled());
        (outcome, telemetry)
    };
    let (sync, sync_tele) = run_sched(isop::scheduler::RolloutSchedule::Synchronous);
    let (async_, async_tele) = run_sched(isop::scheduler::RolloutSchedule::AsyncBatched);

    assert!(!sync.candidates.is_empty());
    assert_eq!(sync.candidates, async_.candidates);
    assert_eq!(sync.success, async_.success);
    assert_eq!(sync.em_seconds.to_bits(), async_.em_seconds.to_bits());
    assert_eq!(
        sync_tele.counter(Counter::EmBatchesCharged),
        async_tele.counter(Counter::EmBatchesCharged)
    );
    // Only the async run reports scheduler activity; the sync reference
    // keeps the legacy counters at zero.
    assert_eq!(sync_tele.counter(Counter::EmSchedBatches), 0);
    assert!(async_tele.counter(Counter::EmSchedBatches) > 0);
}

/// A warm-cache replay delivers the whole roll-out without occupying a
/// single live batch slot: `em.sched.batches` stays flat, the charged
/// ledger stays at zero, and the elided batches land in the saved ledger
/// with `em.batches_charged` unchanged from the cold run.
#[test]
fn warm_cache_replay_occupies_zero_batch_slots() {
    let cache = EvalCache::new();
    let cold_tele = Telemetry::enabled();
    let cold_sim = AnalyticalSolver::new().with_telemetry(cold_tele.clone());
    let cold = run_with(&cold_sim, smoke_config(2), &cold_tele, &cache);

    let warm_tele = Telemetry::enabled();
    let warm_sim = AnalyticalSolver::new().with_telemetry(warm_tele.clone());
    let warm = run_with(&warm_sim, smoke_config(2), &warm_tele, &cache);

    assert_eq!(cold.candidates, warm.candidates);
    assert!(cold_tele.counter(Counter::EmSchedBatches) > 0);
    assert_eq!(
        warm_tele.counter(Counter::EmSchedBatches),
        0,
        "cache hits must not occupy live batch slots"
    );
    assert_eq!(warm_tele.counter(Counter::EmSchedSlackSlots), 0);
    assert_eq!(warm.em_seconds, 0.0);
    assert!(warm.em_seconds_saved > 0.0);
    assert_eq!(
        (warm.em_seconds + warm.em_seconds_saved).to_bits(),
        cold.em_seconds.to_bits(),
        "charged + saved must be invariant under the cache"
    );
    assert_eq!(
        cold_tele.counter(Counter::EmBatchesCharged),
        warm_tele.counter(Counter::EmBatchesCharged),
        "replay books the same logical batches, just into the saved ledger"
    );
}

/// Four candidates do not fit one batch: the stream charges two nominals
/// (one full batch, one ragged) and books the ragged batch's two empty
/// slots as slack — the exact waste the cross-trial interleaving exists
/// to reclaim.
#[test]
fn ragged_final_batch_charges_full_nominal_and_books_slack() {
    let telemetry = Telemetry::enabled();
    let simulator = AnalyticalSolver::new().with_telemetry(telemetry.clone());
    let config = IsopConfig {
        gd_candidates: 6,
        cand_num: 4,
        ..smoke_config(2)
    };
    let outcome = run_with(&simulator, config, &telemetry, &EvalCache::disabled());

    assert_eq!(
        outcome.candidates.len(),
        4,
        "expected a full 4-way roll-out"
    );
    let nominal = simulator.nominal_seconds();
    assert_eq!(
        outcome.em_seconds.to_bits(),
        (2.0 * nominal).to_bits(),
        "3 + 1 designs = two charged batches"
    );
    assert_eq!(telemetry.counter(Counter::EmSchedBatches), 2);
    assert_eq!(
        telemetry.counter(Counter::EmSchedSlackSlots),
        2,
        "the ragged batch ran with two empty slots"
    );
}

/// Cross-trial interleaving: three 2-candidate trials pack into two full
/// batches instead of three ragged ones — strictly cheaper than the
/// sequential cell — while every trial's winning design, metrics, and FoM
/// stay exactly those of the sequential run, at any thread width.
#[test]
fn interleaved_trials_fill_ragged_batches_without_changing_winners() {
    fn cell<'a>(
        space: &'a ParamSpace,
        surrogate: &'a dyn Surrogate,
        simulator: &'a dyn EmSimulator,
        threads: usize,
        telemetry: &Telemetry,
    ) -> isop::experiment::ExperimentContext<'a> {
        isop::experiment::ExperimentContext {
            space,
            surrogate,
            simulator,
            isop_config: IsopConfig {
                cand_num: 2,
                ..smoke_config(threads)
            },
            n_trials: 3,
            seed: SEED,
            telemetry: telemetry.clone(),
            eval_cache: EvalCache::disabled(),
            surrogate_memo: SurrogateMemo::disabled(),
        }
    }
    let space = isop::spaces::s1();
    let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
    let objective = isop::tasks::objective_for(TaskId::T1, vec![]);

    let seq_tele = Telemetry::enabled();
    let seq_sim = AnalyticalSolver::new().with_telemetry(seq_tele.clone());
    let sequential = cell(&space, &surrogate, &seq_sim, 2, &seq_tele).run_isop(&objective);

    let inter_tele = Telemetry::enabled();
    let inter_sim = AnalyticalSolver::new().with_telemetry(inter_tele.clone());
    let interleaved =
        cell(&space, &surrogate, &inter_sim, 2, &inter_tele).run_isop_interleaved(&objective);

    // Same winners, metrics, FoM, and sample accounting per trial — only
    // the batch packing (and with it the ledger) changed.
    assert_eq!(sequential.results.len(), interleaved.results.len());
    for (s, i) in sequential.results.iter().zip(&interleaved.results) {
        assert_eq!(s.design, i.design);
        assert_eq!(s.metrics, i.metrics);
        assert_eq!(s.fom.to_bits(), i.fom.to_bits());
        assert_eq!(s.success, i.success);
        assert_eq!(s.samples_seen, i.samples_seen);
    }
    assert_eq!(sequential.degraded, interleaved.degraded);

    // 3 trials x 2 candidates: sequential rolls three ragged batches,
    // interleaving packs the same six flights into two full ones.
    assert_eq!(seq_tele.counter(Counter::EmSchedBatches), 3);
    assert_eq!(inter_tele.counter(Counter::EmSchedBatches), 2);
    assert!(inter_tele.counter(Counter::EmSchedInterleaved) > 0);
    assert!(
        inter_tele.counter(Counter::EmSchedSlackSlots)
            < seq_tele.counter(Counter::EmSchedSlackSlots)
    );

    // The interleaved pass is deterministic across thread widths too.
    let wide_tele = Telemetry::enabled();
    let wide_sim = AnalyticalSolver::new().with_telemetry(wide_tele.clone());
    let wide = cell(&space, &surrogate, &wide_sim, 4, &wide_tele).run_isop_interleaved(&objective);
    assert_eq!(interleaved.results.len(), wide.results.len());
    for (a, b) in interleaved.results.iter().zip(&wide.results) {
        // Everything but the real wall-clock is bit-identical.
        assert_eq!(a.design, b.design);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.fom.to_bits(), b.fom.to_bits());
        assert_eq!(a.success, b.success);
        assert_eq!(a.samples_seen, b.samples_seen);
    }
    for c in Counter::ALL {
        assert_eq!(
            inter_tele.counter(c),
            wide_tele.counter(c),
            "interleaved counter {} diverged between 2 and 4 threads",
            c.name()
        );
    }
}
