//! Concurrent-neighbor bit-identity contracts of the multi-job engine.
//!
//! The engine's headline promise: a job's candidates, EM ledgers, and
//! every per-job counter are **bit-identical to running it alone** — same
//! wave position, same initial store view — no matter how many neighbors
//! share its wave, what spaces they search, how many core permits the
//! budget holds, or whether a neighbor is busy failing through a fault
//! injector. These tests pin each clause, plus the deterministic
//! cross-wave warm-start that makes shared-space batches cheap.

use isop::prelude::*;
use isop_hpo::harmonica::HarmonicaConfig;
use isop_hpo::hyperband::HyperbandConfig;
use isop_store::Store;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A pipeline shape small enough to run many engine batches per test.
fn tiny_pipeline() -> IsopConfig {
    IsopConfig {
        harmonica: HarmonicaConfig {
            stages: 1,
            samples_per_stage: 40,
            top_monomials: 4,
            bits_per_stage: 6,
            ..HarmonicaConfig::default()
        },
        hyperband: HyperbandConfig {
            max_resource: 2.0,
            eta: 2.0,
        },
        gd_candidates: 2,
        gd_epochs: 5,
        cand_num: 2,
        ..IsopConfig::default()
    }
}

fn spec(id: &str, task: &str, space: &str, seed: u64) -> JobSpec {
    JobSpec {
        id: id.to_string(),
        task: task.to_string(),
        space: space.to_string(),
        seed,
        threads: 2,
        ..JobSpec::default()
    }
}

/// A unique scratch store directory, removed by [`Scratch::drop`].
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        Self(std::env::temp_dir().join(format!("isop-engine-test-{tag}-{}", std::process::id())))
    }
    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Runs a batch through the engine against the store at `dir` and returns
/// the engine report. Fresh `Store` handle per run, exactly like separate
/// `isop serve` invocations against one cache directory.
fn run_engine(specs: &[JobSpec], cores: usize, wave_slots: usize, dir: &Path) -> EngineReport {
    let mut queue = JobQueue::new();
    for s in specs {
        queue.push(s.clone());
    }
    let telemetry = Telemetry::enabled();
    let store = Arc::new(
        Store::open(dir)
            .expect("open store")
            .with_telemetry(telemetry.clone()),
    );
    Engine::new(EngineConfig {
        cores,
        wave_slots,
        pipeline: tiny_pipeline(),
    })
    .with_telemetry(telemetry)
    .with_store(store)
    .run(&queue)
    .expect("engine run")
}

/// Asserts two runs of the same job are indistinguishable: candidate sets,
/// both EM ledgers at exact bits, resolution, and every per-job counter.
/// Wall-clock fields are the only thing allowed to differ.
fn assert_job_identical(a: &JobResult, b: &JobResult, what: &str) {
    assert_eq!(a.candidates, b.candidates, "{what}: candidates diverged");
    assert_eq!(
        a.em_seconds_charged.to_bits(),
        b.em_seconds_charged.to_bits(),
        "{what}: charged EM ledger diverged"
    );
    assert_eq!(
        a.em_seconds_saved.to_bits(),
        b.em_seconds_saved.to_bits(),
        "{what}: saved EM ledger diverged"
    );
    assert_eq!(a.success, b.success, "{what}: success diverged");
    assert_eq!(a.resolution, b.resolution, "{what}: resolution diverged");
    assert_eq!(
        a.report.samples_seen, b.report.samples_seen,
        "{what}: samples_seen diverged"
    );
    assert_eq!(
        a.report.invalid_seen, b.report.invalid_seen,
        "{what}: invalid_seen diverged"
    );
    let counters_a: Vec<(String, u64)> = a
        .report
        .counters
        .iter()
        .map(|c| (c.name.clone(), c.value))
        .collect();
    let counters_b: Vec<(String, u64)> = b
        .report
        .counters
        .iter()
        .map(|c| (c.name.clone(), c.value))
        .collect();
    assert_eq!(counters_a, counters_b, "{what}: counters diverged");
}

fn job<'a>(rep: &'a EngineReport, id: &str) -> &'a JobResult {
    rep.jobs
        .iter()
        .find(|j| j.id == id)
        .unwrap_or_else(|| panic!("job '{id}' missing from engine report"))
}

/// The core contract: one job solo vs the same job sharing its admission
/// wave with three neighbors — one on the same space, two on different
/// spaces/tasks — must be bit-for-bit the same job.
#[test]
fn job_is_bit_identical_solo_and_alongside_neighbors() {
    let target = spec("target", "t1", "s1", 7);
    let neighbors = [
        spec("same-space", "t1", "s1", 11),
        spec("other-space", "t2", "s2", 7),
        spec("other-task", "t3", "s1p", 13),
    ];

    let solo_dir = Scratch::new("solo");
    let solo = run_engine(std::slice::from_ref(&target), 2, 4, solo_dir.path());

    let mut batch = vec![target];
    batch.extend(neighbors);
    let conc_dir = Scratch::new("conc");
    let concurrent = run_engine(&batch, 2, 4, conc_dir.path());

    // Everything landed in one wave: every job's initial store view is the
    // same empty store the solo run saw.
    assert_eq!(concurrent.waves, 1, "expected a single admission wave");
    assert_job_identical(
        job(&solo, "target"),
        job(&concurrent, "target"),
        "solo vs 3 neighbors",
    );
}

/// Clamping the core budget must be invisible in results: the whole batch
/// at one permit is bit-identical to the batch at eight.
#[test]
fn permit_width_does_not_change_any_job() {
    let batch = [
        spec("a", "t1", "s1", 3),
        spec("b", "t2", "s2", 4),
        spec("c", "t1", "s1", 5),
        spec("d", "t4", "s1p", 6),
    ];
    let narrow_dir = Scratch::new("narrow");
    let narrow = run_engine(&batch, 1, 4, narrow_dir.path());
    let wide_dir = Scratch::new("wide");
    let wide = run_engine(&batch, 8, 4, wide_dir.path());
    assert!(narrow.peak_core_permits <= 1);
    assert!(wide.peak_core_permits <= 8);
    for s in &batch {
        assert_job_identical(job(&narrow, &s.id), job(&wide, &s.id), &s.id);
    }
}

/// A neighbor drowning in injected faults must not perturb anyone else's
/// results — and its own failures must stay in its own report.
#[test]
fn faulty_neighbor_does_not_perturb_the_wave() {
    let target = spec("target", "t1", "s1", 7);
    let mut faulty = spec("faulty", "t1", "s2", 9);
    faulty.em_fault_rate = 0.8;
    faulty.em_permanent_rate = 0.5;

    let solo_dir = Scratch::new("fault-solo");
    let solo = run_engine(std::slice::from_ref(&target), 2, 4, solo_dir.path());
    let conc_dir = Scratch::new("fault-conc");
    let concurrent = run_engine(&[target, faulty], 2, 4, conc_dir.path());

    assert_job_identical(
        job(&solo, "target"),
        job(&concurrent, "target"),
        "target vs faulty neighbor",
    );
    let faulty_job = job(&concurrent, "faulty");
    let failures = faulty_job.report.counter("em.failures_transient")
        + faulty_job.report.counter("em.failures_permanent");
    assert!(failures > 0, "fault injection never fired");
    let target_job = job(&concurrent, "target");
    assert_eq!(
        target_job.report.counter("em.failures_transient")
            + target_job.report.counter("em.failures_permanent"),
        0,
        "a neighbor's failures leaked into the target's report"
    );
}

/// Cross-wave warm-starting is deterministic: a job admitted after a
/// same-space wave must be bit-identical to running it alone against a
/// store primed by that same predecessor — and must actually elide its EM
/// time through cross-job hits.
#[test]
fn later_wave_warm_starts_deterministically() {
    let warmup = spec("warmup", "t1", "s1", 7);
    let target = spec("target", "t1", "s1", 7);

    // Reference: two separate engine runs against one store directory.
    let primed_dir = Scratch::new("primed");
    run_engine(std::slice::from_ref(&warmup), 2, 4, primed_dir.path());
    let solo = run_engine(std::slice::from_ref(&target), 2, 4, primed_dir.path());

    // One engine run, one wave slot: warmup in wave 0, target in wave 1,
    // separated by the engine's inter-wave flush.
    let seq_dir = Scratch::new("seq");
    let sequenced = run_engine(&[warmup, target], 2, 1, seq_dir.path());
    assert_eq!(sequenced.waves, 2);

    assert_job_identical(
        job(&solo, "target"),
        job(&sequenced, "target"),
        "primed solo vs second wave",
    );
    let warmed = job(&sequenced, "target");
    assert!(
        warmed.em_seconds_saved > 0.0,
        "second wave charged full EM price despite a same-space wave 0"
    );
    assert!(
        sequenced.cross_job_hits > 0,
        "no cross-job hits recorded for the warm-started wave"
    );
    assert_eq!(
        warmed.em_seconds_charged.to_bits(),
        0f64.to_bits(),
        "an identical predecessor job should elide every accurate simulation"
    );
}
