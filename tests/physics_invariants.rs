//! Property-based tests on the EM substrate: physical monotonicities that
//! must hold for *every* design in the training ranges — the qualitative
//! structure the whole optimization story depends on.

use isop_em::simulator::{AnalyticalSolver, EmSimulator};
use isop_em::stackup::DiffStripline;
use proptest::prelude::*;

/// Strategy: a random valid layer drawn from (a safe interior of) the
/// training ranges.
fn layer_strategy() -> impl Strategy<Value = DiffStripline> {
    (
        2.0f64..20.0,    // W_t
        2.0f64..30.0,    // S_t
        10.0f64..80.0,   // D_t
        0.0f64..0.4,     // E_t
        0.5f64..3.0,     // H_t
        2.0f64..30.0,    // H_c
        2.0f64..30.0,    // H_p
        3.0e7f64..5.8e7, // sigma
        -14.5f64..14.0,  // R_t
        1.5f64..7.0,     // Dk (shared for simplicity)
        0.0005f64..0.05, // Df (shared)
    )
        .prop_filter_map(
            "etch must not pinch the trace",
            |(w, s, d, e, ht, hc, hp, sig, r, dk, df)| {
                DiffStripline::from_vector(&[
                    w, s, d, e, ht, hc, hp, sig, r, dk, dk, dk, df, df, df,
                ])
                .ok()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All three metrics stay physical everywhere.
    #[test]
    fn metrics_are_physical(layer in layer_strategy()) {
        let r = AnalyticalSolver::new().simulate(&layer).expect("valid layer");
        prop_assert!(r.z_diff > 5.0 && r.z_diff < 500.0, "Z = {}", r.z_diff);
        prop_assert!(r.insertion_loss < 0.0 && r.insertion_loss > -20.0, "L = {}", r.insertion_loss);
        prop_assert!(r.next <= 0.0 && r.next > -500.0, "NEXT = {}", r.next);
    }

    /// Widening the trace always lowers impedance.
    #[test]
    fn wider_trace_lowers_z(layer in layer_strategy()) {
        let sim = AnalyticalSolver::new();
        let mut wide = layer;
        wide.trace_width += 2.0;
        let z0 = sim.simulate(&layer).expect("ok").z_diff;
        let z1 = sim.simulate(&wide).expect("ok").z_diff;
        prop_assert!(z1 < z0, "{z1} !< {z0}");
    }

    /// Raising every Dk always lowers impedance.
    #[test]
    fn higher_dk_lowers_z(layer in layer_strategy()) {
        let sim = AnalyticalSolver::new();
        let mut dense = layer;
        dense.dk_core = (dense.dk_core + 1.0).min(12.0);
        dense.dk_prepreg = (dense.dk_prepreg + 1.0).min(12.0);
        dense.dk_trace = (dense.dk_trace + 1.0).min(12.0);
        let z0 = sim.simulate(&layer).expect("ok").z_diff;
        let z1 = sim.simulate(&dense).expect("ok").z_diff;
        prop_assert!(z1 < z0);
    }

    /// Rougher copper and higher loss tangent both increase |L|.
    #[test]
    fn loss_mechanisms_add_up(layer in layer_strategy()) {
        let sim = AnalyticalSolver::new();
        let base = sim.simulate(&layer).expect("ok").insertion_loss;

        let mut rough = layer;
        rough.roughness = 14.0;
        let mut smooth = layer;
        smooth.roughness = -14.5;
        let l_rough = sim.simulate(&rough).expect("ok").insertion_loss;
        let l_smooth = sim.simulate(&smooth).expect("ok").insertion_loss;
        prop_assert!(l_rough <= l_smooth + 1e-12);

        let mut lossy = layer;
        lossy.df_core = (lossy.df_core * 3.0).min(0.4);
        lossy.df_prepreg = (lossy.df_prepreg * 3.0).min(0.4);
        lossy.df_trace = (lossy.df_trace * 3.0).min(0.4);
        let l_lossy = sim.simulate(&lossy).expect("ok").insertion_loss;
        prop_assert!(l_lossy <= base + 1e-12);
    }

    /// Pulling the pairs apart strictly reduces crosstalk magnitude.
    #[test]
    fn distance_reduces_next(layer in layer_strategy()) {
        let sim = AnalyticalSolver::new();
        let mut far = layer;
        far.pair_distance += 10.0;
        let n0 = sim.simulate(&layer).expect("ok").next.abs();
        let n1 = sim.simulate(&far).expect("ok").next.abs();
        prop_assert!(n1 <= n0 + 1e-12);
    }

    /// Higher conductivity never increases loss.
    #[test]
    fn conductivity_helps(layer in layer_strategy()) {
        let sim = AnalyticalSolver::new();
        let mut good = layer;
        good.conductivity = 5.8e7;
        let mut bad = layer;
        bad.conductivity = 3.0e7;
        let l_good = sim.simulate(&good).expect("ok").insertion_loss;
        let l_bad = sim.simulate(&bad).expect("ok").insertion_loss;
        prop_assert!(l_good >= l_bad - 1e-12);
    }

    /// The simulator is deterministic.
    #[test]
    fn simulation_is_deterministic(layer in layer_strategy()) {
        let sim = AnalyticalSolver::new();
        let a = sim.simulate(&layer).expect("ok");
        let b = sim.simulate(&layer).expect("ok");
        prop_assert_eq!(a, b);
    }
}
