//! Property-based tests on the binary encoding (Eqs. 4–6) across the
//! paper's search spaces — the invariants the global stage relies on.

use isop::params::ParamSpace;
use proptest::prelude::*;

fn spaces() -> Vec<ParamSpace> {
    vec![
        isop::spaces::s1(),
        isop::spaces::s2(),
        isop::spaces::s1_prime(),
    ]
}

/// Strategy: a valid level vector for the given space.
fn levels_strategy(space: &ParamSpace) -> impl Strategy<Value = Vec<usize>> {
    let cards = space.cardinalities();
    cards
        .into_iter()
        .map(|c| (0..c).boxed())
        .collect::<Vec<_>>()
        .prop_map(|levels| levels)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode -> decode is the identity on valid level vectors, in every
    /// paper space.
    #[test]
    fn encode_decode_roundtrip(seed in 0usize..3, levels in levels_strategy(&isop::spaces::s2())) {
        let space = &spaces()[seed];
        // Clamp the S2-shaped levels into this space's cardinalities.
        let cards = space.cardinalities();
        let levels: Vec<usize> = levels.iter().zip(&cards).map(|(&l, &c)| l % c).collect();
        let bits = space.encode_levels(&levels);
        prop_assert_eq!(bits.len(), space.total_bits());
        prop_assert_eq!(space.decode_levels(&bits), Some(levels));
    }

    /// Decoded values always lie on the grid and inside the bounds.
    #[test]
    fn decoded_values_are_grid_members(levels in levels_strategy(&isop::spaces::s1())) {
        let space = isop::spaces::s1();
        let bits = space.encode_levels(&levels);
        let values = space.decode_values(&bits).expect("valid encoding");
        prop_assert!(space.contains(&values));
        for (v, p) in values.iter().zip(space.params()) {
            prop_assert!(*v >= p.lo - 1e-9 && *v <= p.hi + 1e-9);
        }
    }

    /// Rounding to the grid is idempotent and never moves an on-grid value.
    #[test]
    fn round_to_grid_idempotent(levels in levels_strategy(&isop::spaces::s1()), jitter in prop::collection::vec(-0.49f64..0.49, 15)) {
        let space = isop::spaces::s1();
        let values = space.values_of_levels(&levels);
        // On-grid values are fixed points.
        let rounded = space.round_to_grid(&values);
        for (a, b) in values.iter().zip(&rounded) {
            prop_assert!((a - b).abs() < 1e-9);
        }
        // Off-grid perturbations (within half a step) round back.
        let perturbed: Vec<f64> = values
            .iter()
            .zip(space.params())
            .zip(&jitter)
            .map(|((v, p), j)| v + j * p.step)
            .collect();
        let snapped = space.round_to_grid(&perturbed);
        let twice = space.round_to_grid(&snapped);
        prop_assert_eq!(&snapped, &twice, "rounding must be idempotent");
        prop_assert!(space.contains(&snapped));
    }

    /// Random bitstrings either decode to a valid design or are rejected —
    /// never a mixture (no partially-valid designs).
    #[test]
    fn decode_is_total_or_none(bits in prop::collection::vec(any::<bool>(), 73)) {
        let space = isop::spaces::s1();
        match space.decode_values(&bits) {
            Some(values) => prop_assert!(space.contains(&values)),
            None => { /* invalid code: fine */ }
        }
    }
}

/// The valid fraction of the S_1 cube matches Table III's published
/// discrepancy (7.14e19 / 2^73 ~ 0.755%), measured by Monte Carlo.
#[test]
fn s1_valid_fraction_matches_table_iii() {
    use rand::Rng;
    use rand::SeedableRng;
    let space = isop::spaces::s1();
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    let n = 300_000;
    let mut valid = 0usize;
    let mut bits = vec![false; space.total_bits()];
    for _ in 0..n {
        for b in &mut bits {
            *b = rng.gen();
        }
        if space.decode_levels(&bits).is_some() {
            valid += 1;
        }
    }
    let measured = valid as f64 / n as f64;
    let expected = space.n_valid() / 2f64.powi(space.total_bits() as i32);
    assert!(
        (measured - expected).abs() < 0.002,
        "valid fraction {measured:.4} vs expected {expected:.4}"
    );
}
