//! Integration tests of the evaluation-cache determinism contract: the
//! cache and memo only elide work whose result is already known exactly,
//! so toggling them — or changing the thread width with them enabled —
//! must not move a single bit of the `RunReport` counters or the final
//! FoM. The simulator and optimizer share one telemetry handle, exactly
//! as the CI bench gate wires them.

use isop::evalcache::{EvalCache, SurrogateMemo};
use isop::prelude::*;
use isop_em::simulator::AnalyticalSolver;
use isop_hpo::budget::Budget;
use isop_hpo::harmonica::HarmonicaConfig;
use isop_hpo::hyperband::HyperbandConfig;

const SEED: u64 = 3;

fn smoke_config(threads: usize) -> IsopConfig {
    IsopConfig {
        harmonica: HarmonicaConfig {
            stages: 2,
            samples_per_stage: 120,
            top_monomials: 6,
            bits_per_stage: 8,
            ..HarmonicaConfig::default()
        },
        hyperband: HyperbandConfig {
            max_resource: 3.0,
            eta: 3.0,
        },
        gd_candidates: 4,
        gd_epochs: 25,
        cand_num: 3,
        parallelism: Parallelism::new(threads),
        ..IsopConfig::default()
    }
}

/// Two seeded smoke runs sharing `cache`/`memo`, returning the aggregate
/// report and both outcomes.
fn run_pair(
    threads: usize,
    cache: &EvalCache,
    memo: &SurrogateMemo,
) -> (
    RunReport,
    isop::pipeline::IsopOutcome,
    isop::pipeline::IsopOutcome,
) {
    let space = isop::spaces::s1();
    let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
    let telemetry = Telemetry::enabled();
    let simulator = AnalyticalSolver::new().with_telemetry(telemetry.clone());
    let run = || {
        IsopOptimizer::new(&space, &surrogate, &simulator, smoke_config(threads))
            .with_telemetry(telemetry.clone())
            .with_eval_cache(cache.clone())
            .with_surrogate_memo(memo.clone())
            .run(
                isop::tasks::objective_for(TaskId::T1, vec![]),
                Budget::unlimited(),
                SEED,
            )
    };
    let first = run();
    let second = run();
    (telemetry.run_report(), first, second)
}

/// Strips the counters whose values legitimately depend on the cache being
/// on (a disabled cache books every probe as a miss by design, and the
/// `em.sched.*` counters track *live* scheduler batches only — a warm
/// roll-out served from cache forms none, its elided batches landing in
/// the saved ledger via the replay pass instead).
fn non_cache_counters(report: &RunReport) -> Vec<(String, u64)> {
    report
        .counters
        .iter()
        .filter(|c| {
            !c.name.starts_with("em.cache.")
                && !c.name.starts_with("surrogate.memo")
                && !c.name.starts_with("em.sched.")
        })
        .map(|c| (c.name.clone(), c.value))
        .collect()
}

#[test]
fn cache_on_and_off_report_bit_identical_counters_and_fom() {
    let (off_report, off_first, off_second) =
        run_pair(2, &EvalCache::disabled(), &SurrogateMemo::disabled());
    let (on_report, on_first, on_second) = run_pair(2, &EvalCache::new(), &SurrogateMemo::new());

    // Every non-cache counter — including the simulator's own attempt /
    // success ticks, replayed on hits — is bit-identical.
    assert_eq!(
        non_cache_counters(&off_report),
        non_cache_counters(&on_report)
    );
    // The cache genuinely engaged on the warm run...
    assert!(on_report.counter("em.cache.hits") > 0);
    assert!(on_report.counter("surrogate.memo_hits") > 0);
    assert_eq!(off_report.counter("em.cache.hits"), 0);

    // ...while candidates, FoM, and the EM ledger invariant held.
    assert_eq!(off_first.candidates, on_first.candidates);
    assert_eq!(off_second.candidates, on_second.candidates);
    assert_eq!(off_first.candidates, off_second.candidates);
    let fom_off = off_second.best().expect("candidate").g_exact;
    let fom_on = on_second.best().expect("candidate").g_exact;
    assert_eq!(fom_off.to_bits(), fom_on.to_bits());
    assert_eq!(
        (on_report.em_seconds_charged + on_report.em_seconds_saved).to_bits(),
        off_report.em_seconds_charged.to_bits(),
        "charged + saved must equal the uncached charge exactly"
    );
    assert!(on_report.em_seconds_saved > 0.0);
    assert_eq!(off_report.em_seconds_saved, 0.0);
    // >= 20% of the EM wall-clock came from cache hits on this protocol
    // (the second roll-out is fully served from cache, so honest is 50%).
    assert!(
        on_report.em_seconds_saved
            >= 0.2 * (on_report.em_seconds_charged + on_report.em_seconds_saved)
    );
}

#[test]
fn cache_enabled_reports_are_bit_identical_across_thread_widths() {
    let (serial_report, serial_first, serial_second) =
        run_pair(1, &EvalCache::new(), &SurrogateMemo::new());
    let (parallel_report, parallel_first, parallel_second) =
        run_pair(4, &EvalCache::new(), &SurrogateMemo::new());

    // Full bitwise identity, cache counters included: probes happen in the
    // serial sections only, so hit/miss totals cannot depend on the width.
    assert_eq!(serial_report.counters, parallel_report.counters);
    assert_eq!(
        serial_report.em_seconds_charged.to_bits(),
        parallel_report.em_seconds_charged.to_bits()
    );
    assert_eq!(
        serial_report.em_seconds_saved.to_bits(),
        parallel_report.em_seconds_saved.to_bits()
    );
    assert_eq!(serial_first.candidates, parallel_first.candidates);
    assert_eq!(serial_second.candidates, parallel_second.candidates);
}
