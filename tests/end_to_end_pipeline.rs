//! End-to-end integration: dataset generation -> surrogate training ->
//! ISOP+ optimization -> accurate verification, spanning all four crates.

use isop::data::generate_mixed_dataset;
use isop::prelude::*;
use isop_em::simulator::{AnalyticalSolver, EmSimulator};
use isop_em::stackup::DiffStripline;
use isop_hpo::budget::Budget;
use isop_ml::models::{Mlp, MlpConfig};

fn small_mlp() -> Mlp {
    Mlp::new(MlpConfig {
        hidden: vec![64, 64],
        epochs: 40,
        batch_size: 64,
        lr: 2e-3,
        dropout: 0.0,
        ..MlpConfig::default()
    })
}

fn small_isop_config() -> IsopConfig {
    let mut cfg = IsopConfig::default();
    cfg.harmonica.stages = 2;
    cfg.harmonica.samples_per_stage = 150;
    cfg.gd_epochs = 30;
    cfg.gd_candidates = 6;
    cfg
}

/// The complete paper flow with a *trained* (imperfect) surrogate.
#[test]
fn trained_surrogate_pipeline_produces_verified_design() {
    let sim = AnalyticalSolver::new();
    // Focus the demo dataset on the optimization region so the small
    // network is accurate where the search happens.
    let data = generate_mixed_dataset(
        &isop::spaces::training_space(),
        &isop::spaces::s1(),
        3000,
        0.5,
        &sim,
        11,
    )
    .expect("dataset");
    let surrogate = NeuralSurrogate::fit(small_mlp(), &data).expect("training converges");

    let space = isop::spaces::s1();
    let optimizer = IsopOptimizer::new(&space, &surrogate, &sim, small_isop_config());
    let outcome = optimizer.run(
        isop::tasks::objective_for(TaskId::T1, vec![]),
        Budget::unlimited(),
        21,
    );

    let best = outcome.best().expect("candidate survives");
    let verified = best.simulated.expect("roll-out verifies");
    // The surrogate is small: allow a loose band, but the design must be
    // near-feasible and on the grid.
    assert!(
        space.contains(&best.values),
        "roll-out must land on the grid"
    );
    assert!(
        (verified.z_diff - 85.0).abs() < 6.0,
        "Z far off target: {}",
        verified.z_diff
    );
    assert!(verified.insertion_loss < 0.0);
    // Surrogate and simulator must roughly agree at the chosen point.
    assert!(
        (best.predicted[0] - verified.z_diff).abs() < 12.0,
        "surrogate Z {} vs verified {}",
        best.predicted[0],
        verified.z_diff
    );
}

/// The oracle-surrogate pipeline must satisfy constraints across seeds and
/// tasks (the 100% success-rate claim at small scale).
#[test]
fn oracle_pipeline_success_across_tasks_and_seeds() {
    let sim = AnalyticalSolver::new();
    let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
    let space = isop::spaces::s1();
    let mut successes = 0;
    let mut runs = 0;
    for task in [TaskId::T1, TaskId::T2, TaskId::T4] {
        for seed in [1u64, 2] {
            let optimizer = IsopOptimizer::new(&space, &surrogate, &sim, small_isop_config());
            let outcome = optimizer.run(
                isop::tasks::objective_for(task, vec![]),
                Budget::unlimited(),
                seed,
            );
            runs += 1;
            if outcome.success {
                successes += 1;
            }
        }
    }
    assert!(
        successes >= runs - 1,
        "oracle pipeline should almost always succeed: {successes}/{runs}"
    );
}

/// Input constraints flow through the whole pipeline: with the Table IX
/// constraints active, the winning design must satisfy them.
#[test]
fn input_constraints_respected_end_to_end() {
    let sim = AnalyticalSolver::new();
    let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
    let space = isop::spaces::s1_prime();
    let ics = isop::tasks::table_ix_input_constraints();
    let optimizer = IsopOptimizer::new(&space, &surrogate, &sim, small_isop_config());
    let outcome = optimizer.run(
        isop::tasks::objective_for(TaskId::T1, ics.clone()),
        Budget::unlimited(),
        5,
    );
    let best = outcome.best().expect("candidate");
    for c in &ics {
        assert!(
            c.violation(&best.values) < 0.5,
            "constraint '{}' badly violated: y = {}",
            c.label,
            c.linear_form(&best.values)
        );
    }
}

/// The roll-out stage's simulated metrics must be reproducible by calling
/// the simulator directly on the reported design vector.
#[test]
fn reported_design_reproduces_reported_metrics() {
    let sim = AnalyticalSolver::new();
    let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
    let space = isop::spaces::s1();
    let optimizer = IsopOptimizer::new(&space, &surrogate, &sim, small_isop_config());
    let outcome = optimizer.run(
        isop::tasks::objective_for(TaskId::T1, vec![]),
        Budget::unlimited(),
        9,
    );
    for c in &outcome.candidates {
        let layer = DiffStripline::from_vector(&c.values).expect("valid");
        let fresh = AnalyticalSolver::new().simulate(&layer).expect("simulates");
        assert_eq!(Some(fresh), c.simulated, "metrics must be reproducible");
    }
}
