//! Derive macros for the vendored `serde` stand-in.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! shapes this workspace actually uses — structs with named fields, tuple
//! structs, and enums with unit / tuple / struct variants — by walking the
//! raw token stream (no `syn`/`quote`: the build environment has no
//! registry access). Generics and `#[serde(...)]` attributes are not
//! supported and produce a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Kind {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct TypeDef {
    name: String,
    kind: Kind,
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse_type(input);
    gen_serialize(&def)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse_type(input);
    gen_deserialize(&def)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_type(input: TokenStream) -> TypeDef {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stub derive: expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stub derive: expected type name, got {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stub derive: generic type {name} is not supported");
    }
    let kind = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Kind::Unit,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde stub derive: malformed enum {name}: {other:?}"),
        },
        other => panic!("serde stub derive: unsupported item kind '{other}'"),
    };
    TypeDef { name, kind }
}

/// Advances `i` past any `#[...]` attributes and `pub` / `pub(...)`
/// visibility tokens.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Splits named-field tokens `a: T, b: U<V, W>, ...` into field names,
/// tracking `<...>` depth so commas inside generic types don't split.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde stub derive: expected field name, got {other}"),
        };
        fields.push(name);
        // Skip to the comma terminating this field (or end of stream).
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

/// Counts tuple-struct / tuple-variant fields by top-level commas.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    // A trailing comma adds a phantom segment; detect it.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde stub derive: expected variant name, got {other}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("serde stub derive: explicit discriminants are not supported");
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen (string-built, then parsed back into a TokenStream)
// ---------------------------------------------------------------------------

const VALUE: &str = "::serde::json::Value";
const ERROR: &str = "::serde::json::Error";

fn gen_serialize(def: &TypeDef) -> String {
    let name = &def.name;
    let body = match &def.kind {
        Kind::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("(String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))")
                })
                .collect();
            format!("{VALUE}::Obj(vec![{}])", entries.join(", "))
        }
        Kind::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("{VALUE}::Arr(vec![{}])", items.join(", "))
        }
        Kind::Unit => format!("{VALUE}::Null"),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => {
                            format!("{name}::{vn} => {VALUE}::Str(String::from(\"{vn}\")),")
                        }
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(f0) => {VALUE}::Obj(vec![(String::from(\"{vn}\"), \
                             ::serde::Serialize::to_value(f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => {VALUE}::Obj(vec![(String::from(\"{vn}\"), \
                                 {VALUE}::Arr(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => {VALUE}::Obj(vec![\
                                 (String::from(\"{vn}\"), {VALUE}::Obj(vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> {VALUE} {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(def: &TypeDef) -> String {
    let name = &def.name;
    let body = match &def.kind {
        Kind::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value({VALUE}::field(obj, \"{f}\"))\
                         .map_err(|e| {ERROR}::msg(format!(\"{name}.{f}: {{e}}\")))?,"
                    )
                })
                .collect();
            format!(
                "let obj = v.as_obj().ok_or_else(|| {ERROR}::mismatch(\"object ({name})\", v))?;\n\
                 Ok({name} {{ {} }})",
                inits.join(" ")
            )
        }
        Kind::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(v)?))"),
        Kind::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "match v {{\n\
                     {VALUE}::Arr(items) if items.len() == {n} => \
                         Ok({name}({})),\n\
                     other => Err({ERROR}::mismatch(\"array of {n} ({name})\", other)),\n\
                 }}",
                inits.join(", ")
            )
        }
        Kind::Unit => format!("let _ = v; Ok({name})"),
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => return Ok({name}::{0}),", v.name))
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => return Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(inner)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => match inner {{\n\
                                     {VALUE}::Arr(items) if items.len() == {n} => \
                                         return Ok({name}::{vn}({})),\n\
                                     other => return Err({ERROR}::mismatch(\
                                         \"array of {n} ({name}::{vn})\", other)),\n\
                                 }},",
                                inits.join(", ")
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         {VALUE}::field(vobj, \"{f}\"))\
                                         .map_err(|e| {ERROR}::msg(format!(\
                                         \"{name}::{vn}.{f}: {{e}}\")))?,"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let vobj = inner.as_obj().ok_or_else(|| \
                                         {ERROR}::mismatch(\"object ({name}::{vn})\", inner))?;\n\
                                     return Ok({name}::{vn} {{ {} }});\n\
                                 }}",
                                inits.join(" ")
                            ))
                        }
                    }
                })
                .collect();
            let mut code = String::new();
            if !unit_arms.is_empty() {
                code.push_str(&format!(
                    "if let Some(s) = v.as_str() {{\n\
                         match s {{ {} _ => {{}} }}\n\
                     }}\n",
                    unit_arms.join(" ")
                ));
            }
            if !payload_arms.is_empty() {
                code.push_str(&format!(
                    "if let Some(o) = v.as_obj() {{\n\
                         if o.len() == 1 {{\n\
                             let (tag, inner) = (&o[0].0, &o[0].1);\n\
                             match tag.as_str() {{ {} _ => {{}} }}\n\
                         }}\n\
                     }}\n",
                    payload_arms.join(" ")
                ));
            }
            code.push_str(&format!(
                "Err({ERROR}::mismatch(\"a variant of {name}\", v))"
            ));
            code
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, unreachable_code, unused_variables)]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &{VALUE}) -> Result<Self, {ERROR}> {{ {body} }}\n\
         }}"
    )
}
