//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses. The build environment has no registry access, so the workspace
//! vendors a small, dependency-free implementation with the same call
//! surface: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the [`Rng`]
//! extension methods (`gen`, `gen_range`, `gen_bool`) and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! solid for test/search workloads and fully deterministic for a given
//! seed, which the ISOP+ determinism guarantee relies on. Streams are NOT
//! bit-compatible with the real `rand` crate; everything in this repository
//! that depends on an RNG stream derives it from an explicit seed, so only
//! internal consistency matters.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core of a random number generator: a source of `u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution of the real crate).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value; panics on an empty range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// Uniform draw in `[0, span)` (`span = 0` means the full 64-bit domain),
/// using widening-multiply rejection to avoid modulo bias.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    // Lemire's method with rejection on the low word.
    let threshold = span.wrapping_neg() % span;
    loop {
        let m = (rng.next_u64() as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Extension methods every `RngCore` gets (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value uniformly over the type's domain.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers (mirrors `rand::seq`).

    use super::{Rng, RngCore};

    /// Slice shuffling and choosing.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = rng.gen_range(0..self.len());
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let u = rng.gen_range(3usize..10);
            assert!((3..10).contains(&u));
            let v = rng.gen_range(5u64..=5);
            assert_eq!(v, 5);
            let x = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&x));
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0usize; 5];
        for _ in 0..5000 {
            counts[rng.gen_range(0usize..5)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(13);
        let v = [1, 2, 3];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
