//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Provides the [`proptest!`] macro, the [`Strategy`] trait with
//! `prop_map` / `prop_filter_map` / `boxed` combinators, range and
//! collection strategies, and [`ProptestConfig`]. Differences from real
//! proptest, deliberate for an offline vendored stub:
//!
//! - **No shrinking.** A failing case reports the generated inputs via the
//!   normal panic message but is not minimized.
//! - **Deterministic seeding.** Each test derives its RNG seed from the
//!   test name, so failures reproduce exactly across runs.
//! - `prop_assert!` / `prop_assert_eq!` delegate to `assert!` /
//!   `assert_eq!` (panic instead of returning `TestCaseError`).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::Rng;

/// Per-test configuration (mirrors `proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Consecutive strategy rejections tolerated before the test aborts.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            max_global_rejects: 4096,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self::with_cases(256)
    }
}

/// A generator of random values (mirrors `proptest::strategy::Strategy`,
/// minus value trees / shrinking).
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value; `None` means a filter rejected the draw.
    fn sample(&self, rng: &mut StdRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Maps through `f`, rejecting draws where `f` returns `None`.
    /// `_whence` labels the filter in real proptest; kept for signature
    /// compatibility.
    fn prop_filter_map<U, F: Fn(Self::Value) -> Option<U>>(
        self,
        _whence: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> Option<U> {
        self.inner.sample(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> Option<U> {
        self.inner.sample(rng).and_then(&self.f)
    }
}

/// A type-erased strategy (mirrors `proptest::strategy::BoxedStrategy`).
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> Option<T> {
        self.0.sample(rng)
    }
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

// ---------------------------------------------------------------------------
// Tuple and Vec strategies
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Option<Self::Value> {
                Some(($(self.$idx.sample(rng)?,)+))
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10, L: 11)
}

/// One independent strategy per element (used by tests that build a
/// `Vec<BoxedStrategy<_>>` and treat it as a strategy over `Vec<_>`).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Option<Self::Value> {
        self.iter().map(|s| s.sample(rng)).collect()
    }
}

// ---------------------------------------------------------------------------
// Arbitrary / any
// ---------------------------------------------------------------------------

/// A type with a canonical strategy (mirrors `proptest::arbitrary`).
pub trait Arbitrary: Sized {
    /// The canonical strategy for this type.
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

impl Arbitrary for bool {
    type Strategy = bool_strategies::Any;
    fn arbitrary() -> Self::Strategy {
        bool_strategies::ANY
    }
}

pub mod bool_strategies {
    //! Boolean strategies (mirrors `proptest::bool`).

    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform boolean constant (`prop::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut StdRng) -> Option<bool> {
            Some(rng.gen::<bool>())
        }
    }
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

pub mod collection {
    //! Collection strategies (mirrors `proptest::collection`).

    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty proptest size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// A strategy for `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Option<Self::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything the `proptest!` idiom needs (mirrors `proptest::prelude`).

    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, BoxedStrategy, ProptestConfig,
        Strategy,
    };

    pub mod prop {
        //! Strategy module shorthand (`prop::collection`, `prop::bool`).

        pub use crate::collection;

        pub mod bool {
            //! Boolean strategies.
            pub use crate::bool_strategies::{Any, ANY};
        }
    }
}

#[doc(hidden)]
pub mod __rt {
    //! Runtime support for the `proptest!` macro expansion.

    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// Deterministic per-test seed derived from the test's name.
    pub fn seed_from_name(name: &str) -> u64 {
        // FNV-1a: stable across platforms, good enough to decorrelate tests.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Defines property tests: each `fn name(bindings in strategies) { body }`
/// becomes a `#[test]` running `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let seed = $crate::__rt::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
                let mut rng = <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(seed);
                for _case in 0..config.cases {
                    let mut generated = false;
                    for _attempt in 0..config.max_global_rejects {
                        $(
                            let $arg = match $crate::Strategy::sample(&($strat), &mut rng) {
                                Some(v) => v,
                                None => continue,
                            };
                        )+
                        generated = true;
                        { $body }
                        break;
                    }
                    assert!(
                        generated,
                        "proptest stub: strategy rejected {} consecutive samples",
                        config.max_global_rejects
                    );
                }
            }
        )*
    };
}

/// Asserts a property holds (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts two values are equal (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn range_strategies_respect_bounds() {
        let mut rng = <__rt::StdRng as rand::SeedableRng>::seed_from_u64(1);
        for _ in 0..200 {
            let x = (2.0f64..20.0).sample(&mut rng).unwrap();
            assert!((2.0..20.0).contains(&x));
            let n = (0usize..7).sample(&mut rng).unwrap();
            assert!(n < 7);
        }
    }

    #[test]
    fn filter_map_rejects() {
        let mut rng = <__rt::StdRng as rand::SeedableRng>::seed_from_u64(2);
        let s = (0u64..10).prop_filter_map("even only", |n| (n % 2 == 0).then_some(n));
        let mut seen_none = false;
        for _ in 0..100 {
            match s.sample(&mut rng) {
                Some(n) => assert_eq!(n % 2, 0),
                None => seen_none = true,
            }
        }
        assert!(seen_none, "odd draws must be rejected");
    }

    use crate::__rt;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_valid_vectors(
            xs in prop::collection::vec(-1.0f64..1.0, 5),
            flag in prop::bool::ANY,
            n in 1usize..4,
        ) {
            prop_assert_eq!(xs.len(), 5);
            prop_assert!(xs.iter().all(|x| (-1.0..1.0).contains(x)));
            prop_assert!((1..4).contains(&n));
            let _ = flag;
        }

        #[test]
        fn boxed_vec_of_strategies(
            levels in vec![(0usize..3).boxed(), (0usize..5).boxed()].prop_map(|l| l)
        ) {
            prop_assert_eq!(levels.len(), 2);
            prop_assert!(levels[0] < 3 && levels[1] < 5);
        }
    }
}
