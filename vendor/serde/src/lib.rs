//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The build environment has no registry access, so the workspace vendors a
//! small self-contained serialization framework with serde's call surface:
//! `#[derive(Serialize, Deserialize)]`, the [`Serialize`]/[`Deserialize`]
//! traits, and [`de::DeserializeOwned`]. The data model is a JSON value
//! tree ([`json::Value`]); `serde_json` (also vendored) is a thin façade
//! over it.
//!
//! Unsupported serde features (attributes, borrowed deserialization,
//! non-self-describing formats) are intentionally absent — nothing in this
//! repository uses them.

#![forbid(unsafe_code)]

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

use json::{Error, Value};

/// A type convertible into the JSON data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// A type constructible from the JSON data model.
pub trait Deserialize: Sized {
    /// Builds `Self` from a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value's shape does not match.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

pub mod de {
    //! Deserialization marker traits (mirrors `serde::de`).

    /// A deserializable type that owns all its data. With the vendored
    /// data model every [`crate::Deserialize`] qualifies.
    pub trait DeserializeOwned: crate::Deserialize {}

    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

pub mod ser {
    //! Serialization re-exports (mirrors `serde::ser`).

    pub use crate::Serialize;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::mismatch("bool", other)),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Num(n) => Ok(*n),
            other => Err(Error::mismatch("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|n| n as f32)
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) if n.fract() == 0.0 => Ok(*n as $t),
                    other => Err(Error::mismatch(stringify!($t), other)),
                }
            }
        }
    )*};
}
impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::mismatch("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::mismatch("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| Error::msg(format!("expected array of length {N}, got {got}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = match v {
                    Value::Arr(items) => items,
                    other => return Err(Error::mismatch("tuple array", other)),
                };
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::msg(format!(
                        "expected tuple of length {expected}, got {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::json::Value;
    use super::{Deserialize, Serialize};

    #[test]
    fn primitives_roundtrip() {
        let v = 42.5f64.to_value();
        assert_eq!(f64::from_value(&v).unwrap(), 42.5);
        let v = 7usize.to_value();
        assert_eq!(usize::from_value(&v).unwrap(), 7);
        let v = true.to_value();
        assert!(bool::from_value(&v).unwrap());
    }

    #[test]
    fn containers_roundtrip() {
        let xs = vec![1.0f64, 2.0, 3.0];
        assert_eq!(Vec::<f64>::from_value(&xs.to_value()).unwrap(), xs);
        let arr = [1.0f64, 2.0, 3.0];
        assert_eq!(<[f64; 3]>::from_value(&arr.to_value()).unwrap(), arr);
        let opt: Option<f64> = None;
        assert_eq!(opt.to_value(), Value::Null);
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn shape_mismatch_errors() {
        assert!(f64::from_value(&Value::Bool(true)).is_err());
        assert!(usize::from_value(&Value::Num(1.5)).is_err());
        assert!(<[f64; 3]>::from_value(&vec![1.0f64].to_value()).is_err());
    }
}
