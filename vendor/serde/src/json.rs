//! The JSON data model shared by the vendored `serde` and `serde_json`:
//! a value tree, a writer, and a recursive-descent parser.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`; written without a fraction when whole).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Builds an error from a message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }

    /// Builds a "expected X, got Y" shape error.
    pub fn mismatch(expected: &str, got: &Value) -> Self {
        Error(format!("expected {expected}, got {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

static NULL: Value = Value::Null;

impl Value {
    /// Short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }

    /// The object's entries, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up `key` in an object slice, yielding `Null` when absent (so
    /// `Option` fields deserialize to `None`).
    pub fn field<'a>(obj: &'a [(String, Value)], key: &str) -> &'a Value {
        obj.iter().find(|(k, _)| k == key).map_or(&NULL, |(_, v)| v)
    }

    /// Writes the value as compact JSON.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_number(*n, out),
            Value::Str(s) => write_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] on malformed input or trailing garbage.
    pub fn parse(s: &str) -> Result<Value, Error> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
        }
        Ok(v)
    }
}

fn write_number(n: f64, out: &mut String) {
    if n.is_nan() {
        // Not strictly JSON, but round-trips through our own parser; real
        // serde_json errors out here, which would lose whole result files.
        out.push_str("NaN");
    } else if n.is_infinite() {
        out.push_str(if n > 0.0 { "Infinity" } else { "-Infinity" });
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        // Whole numbers (within exact-integer range) print without ".0" so
        // integers round-trip through the integer Deserialize impls.
        let _ = fmt::Write::write_fmt(out, format_args!("{}", n as i64));
    } else {
        // Rust's shortest round-trip float formatting.
        let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_word(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_word("null") => Ok(Value::Null),
            Some(b't') if self.eat_word("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_word("false") => Ok(Value::Bool(false)),
            Some(b'N') if self.eat_word("NaN") => Ok(Value::Num(f64::NAN)),
            Some(b'I') if self.eat_word("Infinity") => Ok(Value::Num(f64::INFINITY)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') if self.bytes[self.pos + 1..].starts_with(b"Infinity") => {
                self.pos += 1 + "Infinity".len();
                Ok(Value::Num(f64::NEG_INFINITY))
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::msg(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::msg(format!("invalid number '{text}'")))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::msg("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid utf-8 in string"))?;
                    let c = rest.chars().next().ok_or_else(|| Error::msg("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_document() {
        let v = Value::Obj(vec![
            ("name".into(), Value::Str("isop \"quoted\"\n".into())),
            ("n".into(), Value::Num(42.0)),
            ("x".into(), Value::Num(-0.125)),
            (
                "arr".into(),
                Value::Arr(vec![Value::Null, Value::Bool(true), Value::Num(1e-9)]),
            ),
            ("empty_obj".into(), Value::Obj(vec![])),
            ("empty_arr".into(), Value::Arr(vec![])),
        ]);
        let text = v.to_json_string();
        assert_eq!(Value::parse(&text).unwrap(), v);
    }

    #[test]
    fn whole_numbers_print_as_integers() {
        assert_eq!(Value::Num(85.0).to_json_string(), "85");
        assert_eq!(Value::Num(-3.0).to_json_string(), "-3");
        assert_eq!(Value::Num(0.5).to_json_string(), "0.5");
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let text = r#" { "a" : [ 1 , 2.5e2 , { "b" : null } ] } "#;
        let v = Value::parse(text).unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(obj.len(), 1);
        match Value::field(obj, "a") {
            Value::Arr(items) => {
                assert_eq!(items[0], Value::Num(1.0));
                assert_eq!(items[1], Value::Num(250.0));
            }
            other => panic!("wrong shape: {other:?}"),
        }
    }

    #[test]
    fn nonfinite_numbers_roundtrip() {
        let v = Value::Arr(vec![
            Value::Num(f64::NAN),
            Value::Num(f64::INFINITY),
            Value::Num(f64::NEG_INFINITY),
        ]);
        let parsed = Value::parse(&v.to_json_string()).unwrap();
        match parsed {
            Value::Arr(items) => {
                assert!(matches!(items[0], Value::Num(n) if n.is_nan()));
                assert_eq!(items[1], Value::Num(f64::INFINITY));
                assert_eq!(items[2], Value::Num(f64::NEG_INFINITY));
            }
            other => panic!("wrong shape: {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("12 34").is_err());
        assert!(Value::parse("\"unterminated").is_err());
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for x in [0.1, 1.0 / 3.0, 85.69, -0.434, 5.8e7, f64::MIN_POSITIVE] {
            let text = Value::Num(x).to_json_string();
            match Value::parse(&text).unwrap() {
                Value::Num(y) => assert_eq!(x, y, "text {text}"),
                other => panic!("wrong shape: {other:?}"),
            }
        }
    }
}
