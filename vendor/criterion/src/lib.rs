//! Offline stand-in for the subset of `criterion` this workspace uses:
//! [`Criterion`], [`Criterion::bench_function`], [`Criterion::benchmark_group`]
//! with `sample_size`/`finish`, [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — a short warm-up, then `sample_size`
//! timed runs of the closure, reporting min / mean / max wall-clock time.
//! There is no statistical analysis, outlier rejection, or HTML report.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Benchmark driver (mirrors `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 50 }
    }
}

impl Criterion {
    /// Overrides the default number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` under `id` and prints the result.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&id.into(), self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` under `group/id` and prints the result.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id.into()), self.sample_size, f);
        self
    }

    /// Ends the group (provided for API compatibility).
    pub fn finish(self) {}
}

/// Runs the closure under measurement (mirrors `criterion::Bencher`).
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Times `f`: one warm-up call, then `samples` measured calls.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        std::hint::black_box(f());
        self.durations.clear();
        self.durations.reserve(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.durations.push(t0.elapsed());
        }
    }
}

fn run_one<F: FnOnce(&mut Bencher)>(id: &str, samples: usize, f: F) {
    let mut b = Bencher {
        samples,
        durations: Vec::new(),
    };
    f(&mut b);
    if b.durations.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let min = b.durations.iter().min().copied().unwrap_or_default();
    let max = b.durations.iter().max().copied().unwrap_or_default();
    let total: Duration = b.durations.iter().sum();
    let mean = total / b.durations.len() as u32;
    println!(
        "{id:<40} time: [{} {} {}]  ({} samples)",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
        b.durations.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Re-export for code that uses `criterion::black_box`.
pub use std::hint::black_box;

/// Bundles benchmark functions into a group runner (mirrors criterion's
/// macro; the config-expression form is not supported).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` running the named groups; ignores harness CLI arguments
/// (`cargo bench` passes `--bench`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut calls = 0u32;
        let mut c = Criterion::default();
        c.sample_size(5).bench_function("counter", |b| {
            b.iter(|| {
                calls += 1;
            });
        });
        // 1 warm-up + 5 samples.
        assert_eq!(calls, 6);
    }

    #[test]
    fn groups_prefix_names_and_finish() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_function(format!("inner_{}", 1), |b| b.iter(|| 2 + 2));
        g.finish();
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert!(fmt_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).ends_with("ms"));
    }
}
