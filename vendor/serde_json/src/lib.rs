//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], and the [`Value`] /
//! [`Error`] types (re-exported from the vendored `serde::json` module).

#![forbid(unsafe_code)]

pub use serde::json::{Error, Value};

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Never fails with the vendored data model; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json_string())
}

/// Serializes `value` to JSON. The vendored writer has a single (compact)
/// format; this exists for signature compatibility.
///
/// # Errors
///
/// Never fails with the vendored data model.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    to_string(value)
}

/// Parses a JSON string into any deserializable type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T, Error> {
    let value = Value::parse(s)?;
    T::from_value(&value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_vec() {
        let xs = vec![1.0f64, 2.5, -3.0];
        let s = to_string(&xs).unwrap();
        let back: Vec<f64> = from_str(&s).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn parse_error_reported() {
        assert!(from_str::<Vec<f64>>("[1.0, ").is_err());
        assert!(from_str::<Vec<f64>>("{\"a\": 1}").is_err());
    }
}
