#!/bin/sh
# Final pass: figures first (never produced yet), then the method-comparison
# tables with the fixed pipeline.
set -x
while pgrep -x fig6_pred_vs_tr > /dev/null 2>&1; do sleep 5; done
for bin in fig7_fom_summary fig8_runtime_summary; do
  ISOP_TRIALS=3 cargo run --release -p isop-bench --bin "$bin" > "logs/$bin.log" 2>&1 || echo "FAILED: $bin"
  echo "DONE: $bin"
done
for bin in table4_t1_t2 table5_t3_t4; do
  cargo run --release -p isop-bench --bin "$bin" > "logs/$bin.log" 2>&1 || echo "FAILED: $bin"
  echo "DONE: $bin"
done
ISOP_TRIALS=3 cargo run --release -p isop-bench --bin extra_component_ablation > logs/extra_component_ablation.log 2>&1 || echo "FAILED: extra"
echo "DONE: extra_component_ablation"
echo "ALL_FINAL_DONE"
